"""Window placement, weighted aggregation, and run_sampled invariants."""

import pytest

from repro.experiments import diskcache
from repro.experiments.runner import point_config
from repro.pipeline.machine import Machine
from repro.sampling import SamplingConfig, run_sampled, window_spans
from repro.workloads.spec95 import cached_trace

#: SimStats fields expected to differ between exact and sampled runs even
#: when sampling degrades to a single fully-detailed window.
TELEMETRY = ("sampled_windows", "warmed_entries", "checkpoint_restores")


def _strip_telemetry(stats):
    d = diskcache.stats_to_dict(stats)
    for name in TELEMETRY:
        d.pop(name, None)
    return d


# ---------------------------------------------------------------------------
# SamplingConfig
# ---------------------------------------------------------------------------


def test_config_defaults_are_valid():
    c = SamplingConfig()
    assert c.window >= 1
    assert c.interval >= c.window


def test_config_rejects_bad_geometry():
    with pytest.raises(ValueError):
        SamplingConfig(window=0)
    with pytest.raises(ValueError):
        SamplingConfig(window=100, interval=50)


def test_config_key_and_fingerprint():
    c = SamplingConfig(window=200, interval=1000)
    assert c.key == (200, 1000)
    assert c.fingerprint() == {"window": 200, "interval": 1000}
    # use_checkpoints is a persistence toggle, not a result-affecting
    # parameter: it must not split the cache keyspace.
    assert SamplingConfig(200, 1000, use_checkpoints=False).fingerprint() == (
        c.fingerprint()
    )


# ---------------------------------------------------------------------------
# window_spans
# ---------------------------------------------------------------------------


def test_spans_short_trace_degrades_to_exact():
    spans = window_spans(500, SamplingConfig(window=100, interval=1000))
    assert spans == [(0, 500, 1.0)]


def test_spans_head_stratum_is_fully_detailed():
    spans = window_spans(10_000, SamplingConfig(window=100, interval=1000))
    assert spans[0] == (0, 1000, 1.0)


def test_spans_later_windows_sit_at_stratum_ends():
    sampling = SamplingConfig(window=100, interval=1000)
    spans = window_spans(10_000, sampling)
    assert len(spans) == 10
    for start, end, weight in spans[1:]:
        assert end - start == sampling.window
        assert end % sampling.interval == 0
        assert weight == sampling.interval / sampling.window


def test_spans_partial_tail_stratum():
    spans = window_spans(2_300, SamplingConfig(window=100, interval=1000))
    # Strata: [0,1000) head, [1000,2000) sampled, [2000,2300) sampled.
    assert spans[0] == (0, 1000, 1.0)
    assert spans[1] == (1900, 2000, 10.0)
    assert spans[2] == (2200, 2300, 3.0)


def test_spans_weights_cover_the_whole_trace():
    # Sum over spans of weight * window entries == trace entries: the
    # estimator's committed-instruction total lands on the trace length.
    for total in (12_000, 120_000, 7_777):
        spans = window_spans(total, SamplingConfig(window=150, interval=1500))
        covered = sum(weight * (end - start) for start, end, weight in spans)
        assert covered == pytest.approx(total)


def test_spans_are_ordered_and_disjoint():
    spans = window_spans(50_000, SamplingConfig(window=300, interval=3000))
    for (_, prev_end, _), (start, end, _) in zip(spans, spans[1:]):
        assert prev_end <= start < end


# ---------------------------------------------------------------------------
# run_sampled
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["noIM", "V"])
def test_single_window_sampled_equals_exact(mode):
    # When the whole trace fits in the head stratum, sampling IS an exact
    # run: same counters, bit for bit, plus telemetry.
    config = point_config(4, 1, mode)
    trace = cached_trace("li", 3000)
    exact = Machine(point_config(4, 1, mode), cached_trace("li", 3000)).run()
    sampled = run_sampled(config, trace, SamplingConfig(window=500, interval=4000))
    assert _strip_telemetry(sampled) == _strip_telemetry(exact)
    assert sampled.sampled_windows == 1
    assert sampled.warmed_entries == 0


def test_sampled_is_deterministic():
    config = point_config(4, 1, "V")
    sampling = SamplingConfig(window=200, interval=1000)
    a = run_sampled(config, cached_trace("li", 6000), sampling)
    b = run_sampled(config, cached_trace("li", 6000), sampling)
    assert diskcache.stats_to_dict(a) == diskcache.stats_to_dict(b)


def test_sampled_estimates_full_trace_committed():
    config = point_config(4, 1, "IM")
    sampling = SamplingConfig(window=200, interval=1000)
    trace = cached_trace("compress", 6000)
    stats = run_sampled(config, trace, sampling)
    assert stats.committed == len(trace.entries)
    assert stats.sampled_windows == len(window_spans(len(trace.entries), sampling))
    assert stats.warmed_entries > 0
    assert stats.sampled_ipc_variance >= 0.0


def test_empty_trace_returns_empty_stats():
    from repro.functional.trace import Trace
    from repro.isa import assemble

    program = assemble(".text\n halt\n")
    trace = Trace(program=program, entries=[], initial_memory={}, final_memory={})
    stats = run_sampled(point_config(4, 1, "noIM"), trace)
    assert stats.committed == 0 and stats.cycles == 0


# ---------------------------------------------------------------------------
# checkpoint reuse
# ---------------------------------------------------------------------------


def test_second_sampled_run_does_zero_warming():
    config = point_config(4, 1, "V")
    sampling = SamplingConfig(window=200, interval=1000)
    # A seed no other test (or the experiment runner, which always uses
    # seed 0) shares, so this test owns its checkpoint keyspace.
    scope = {"benchmark": "li", "scale": 6000, "seed": 993}
    trace = cached_trace("li", 6000)
    first = run_sampled(config, trace, sampling, checkpoint_scope=scope)
    second = run_sampled(config, trace, sampling, checkpoint_scope=scope)
    assert first.warmed_entries > 0
    assert first.checkpoint_restores == 0
    # Every gap now restores from the disk cache's checkpoint section.
    assert second.warmed_entries == 0
    assert second.checkpoint_restores == first.sampled_windows - 1
    # And restoring is result-invisible: only the telemetry differs.
    assert _strip_telemetry(second) == _strip_telemetry(first)


def test_checkpoints_are_scoped_by_sampling_geometry():
    # A different window length must not reuse the other geometry's
    # checkpoints at the same positions.
    config = point_config(4, 1, "noIM")
    scope = {"benchmark": "compress", "scale": 6000, "seed": 994}
    trace = cached_trace("compress", 6000)
    run_sampled(config, trace, SamplingConfig(window=200, interval=1000), scope)
    other = run_sampled(config, trace, SamplingConfig(window=250, interval=1000), scope)
    assert other.checkpoint_restores == 0
    assert other.warmed_entries > 0
