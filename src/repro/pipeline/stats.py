"""Simulation statistics.

One :class:`SimStats` instance accumulates everything a run needs to
reproduce the paper's figures; the derived properties at the bottom map
directly onto the figures' metrics (see DESIGN.md §4 for the index).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimStats:
    """Counters for one timing-simulation run."""

    # -- progress -----------------------------------------------------------
    cycles: int = 0
    committed: int = 0

    # -- front end ----------------------------------------------------------
    fetched: int = 0
    branch_mispredicts: int = 0

    # -- memory -------------------------------------------------------------
    #: port transactions that read data (scalar loads and vector fetches).
    read_accesses: int = 0
    #: port transactions that wrote data (committed stores).
    write_accesses: int = 0
    #: scalar loads satisfied by store-to-load forwarding (no port used).
    forwarded_loads: int = 0
    #: committed scalar loads that went to memory.
    scalar_loads_to_memory: int = 0

    # -- vectorization ------------------------------------------------------
    #: dynamic instructions that *created* a vector instance (load or ALU).
    vector_instances: int = 0
    vector_load_instances: int = 0
    vector_alu_instances: int = 0
    #: committed validation operations (the paper's Fig 14 metric).
    validations_committed: int = 0
    #: validations that failed -> misspeculation recovery.
    validation_failures: int = 0
    #: committed stores whose address hit a vector register range (§3.6).
    store_conflicts: int = 0
    committed_stores: int = 0
    #: decode stalls waiting for a scalar operand value (Fig 7 "real").
    scalar_operand_stall_cycles: int = 0
    #: vector ALU instances created with a nonzero start offset (Fig 9).
    offset_instances: int = 0
    #: vector register allocation failures (pool empty -> stayed scalar).
    vreg_alloc_failures: int = 0
    #: element fetches dropped by the cancel-dead-fetches extension.
    fetches_cancelled: int = 0

    # -- vector element accounting (Fig 15) -----------------------------------
    #: summed over every vector register's lifetime:
    elements_computed_used: int = 0
    elements_computed_unused: int = 0
    elements_not_computed: int = 0
    registers_allocated: int = 0
    registers_freed: int = 0

    # -- control-flow independence (Fig 10) -----------------------------------
    #: committed instructions inside the 100-instruction windows that follow
    #: mispredicted branches.
    cfi_window_instructions: int = 0
    #: of those, validations — instructions that "do not need to be
    #: executed since they were executed in vector mode" (the paper's
    #: Fig 10 metric; the vector state they consume survived the flush).
    cfi_reused: int = 0
    #: stricter subset: window validations whose element had already been
    #: computed when the misprediction resolved (pre-flush work directly
    #: reused).
    cfi_precomputed: int = 0

    # -- wide-bus usefulness (Fig 13), filled at the end of a run ---------------
    usefulness: Dict[str, float] = field(default_factory=dict)
    port_occupancy: float = 0.0

    # -- sampled simulation (repro.sampling; all zero in exact mode) ------------
    #: detailed windows aggregated into this result (0 = exact run).
    sampled_windows: int = 0
    #: trace entries streamed by the functional warmer (0 on full
    #: checkpoint reuse — the "zero warming work" telemetry).
    warmed_entries: int = 0
    #: warm-state checkpoints restored from the disk cache.
    checkpoint_restores: int = 0
    #: population variance of per-window IPC (sampling-error estimate).
    sampled_ipc_variance: float = 0.0

    # -- derived metrics -------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle (Fig 11's metric)."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def memory_accesses(self) -> int:
        """Total L1 data-port transactions (the §1 'memory requests')."""
        return self.read_accesses + self.write_accesses

    @property
    def validation_fraction(self) -> float:
        """Share of committed instructions that were validations (Fig 14)."""
        return self.validations_committed / self.committed if self.committed else 0.0

    @property
    def cfi_reuse_fraction(self) -> float:
        """Share of post-mispredict window instructions reused (Fig 10)."""
        if not self.cfi_window_instructions:
            return 0.0
        return self.cfi_reused / self.cfi_window_instructions

    @property
    def sampled(self) -> bool:
        """True when this result was aggregated from detailed windows."""
        return self.sampled_windows > 0

    @property
    def sampled_ipc_stddev(self) -> float:
        """Standard deviation of per-window IPC (0.0 for exact runs)."""
        return self.sampled_ipc_variance ** 0.5

    @property
    def avg_elements(self) -> Dict[str, float]:
        """Per-register average element fates (Fig 15's three stacks)."""
        n = self.registers_allocated
        if not n:
            return {"computed_used": 0.0, "computed_unused": 0.0, "not_computed": 0.0}
        return {
            "computed_used": self.elements_computed_used / n,
            "computed_unused": self.elements_computed_unused / n,
            "not_computed": self.elements_not_computed / n,
        }

    def summary(self) -> str:
        """A compact human-readable multi-line report."""
        lines = [
            f"cycles={self.cycles}  committed={self.committed}  IPC={self.ipc:.3f}",
            f"memory: reads={self.read_accesses} writes={self.write_accesses} "
            f"forwards={self.forwarded_loads} occupancy={self.port_occupancy:.1%}",
            f"branches: mispredicts={self.branch_mispredicts}",
        ]
        if self.sampled_windows:
            lines.append(
                f"sampled: windows={self.sampled_windows} "
                f"warmed={self.warmed_entries} "
                f"checkpoint_restores={self.checkpoint_restores} "
                f"ipc_stddev={self.sampled_ipc_stddev:.3f}"
            )
        if self.vector_instances or self.validations_committed:
            lines.append(
                f"vector: instances={self.vector_instances} "
                f"(loads={self.vector_load_instances} alu={self.vector_alu_instances}) "
                f"validations={self.validations_committed} "
                f"({self.validation_fraction:.1%} of commits) "
                f"failures={self.validation_failures} "
                f"store_conflicts={self.store_conflicts}"
            )
            avg = self.avg_elements
            lines.append(
                f"elements/reg: used={avg['computed_used']:.2f} "
                f"unused={avg['computed_unused']:.2f} "
                f"not_computed={avg['not_computed']:.2f} "
                f"(regs={self.registers_allocated})"
            )
        return "\n".join(lines)
