"""Metrics aggregation across the experiment fabric.

One registry handed to :func:`run_grid` (or threaded through
:func:`run_point`) must end up with the same aggregate totals whichever
path produced each point — fresh pool-worker simulation, parent disk-cache
hit, or in-process memo hit — because ``sim.*`` counters are synthesized
uniformly from the cached stats and machine-level extras ride the
persisted disk payloads.
"""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.experiments.parallel import GridPoint, GridReport, run_grid
from repro.observe import MetricsRegistry, Observer

SCALE = 1_500

POINTS = [
    GridPoint("li", 4, 1, "V", SCALE),
    GridPoint("compress", 4, 1, "V", SCALE),
]


@pytest.fixture
def fresh_state(tmp_path, monkeypatch):
    """Cold memo + private, enabled disk cache for one test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    runner.clear_memo()
    yield
    runner.clear_memo()


def _committed_total(results):
    return sum(stats.committed for stats in results.values())


def test_grid_aggregates_identically_across_all_paths(fresh_state):
    # Path 1: cold — every point simulated (in pool workers).
    cold = MetricsRegistry()
    cold_report = GridReport()
    results = run_grid(POINTS, jobs=2, report=cold_report, metrics=cold)
    assert cold_report.simulated == len(POINTS)
    expected = _committed_total(results)
    assert cold.counter("sim.committed").value == expected
    # machine-level extras shipped back across the pickle boundary
    assert any(name.startswith("engine.") for name in cold.names())
    assert any(name.startswith("mem.") for name in cold.names())

    # Path 2: memo-warm — nothing simulated, sim.* synthesized from memo.
    warm = MetricsRegistry()
    warm_report = GridReport()
    run_grid(POINTS, jobs=2, report=warm_report, metrics=warm)
    assert warm_report.memo_hits == len(POINTS)
    assert warm.counter("sim.committed").value == expected

    # Path 3: disk-warm — persisted payloads replayed in the parent.
    runner.clear_memo()
    disk = MetricsRegistry()
    disk_report = GridReport()
    run_grid(POINTS, jobs=2, report=disk_report, metrics=disk)
    assert disk_report.disk_hits == len(POINTS)
    assert disk.counter("sim.committed").value == expected
    assert any(name.startswith("engine.") for name in disk.names())
    # full machine-level agreement between the cold and disk aggregates
    assert disk.to_dict() == cold.to_dict()


def test_grid_without_registry_records_nothing(fresh_state):
    report = GridReport()
    run_grid(POINTS, jobs=1, report=report)
    assert report.requested == len(POINTS)  # plain path still works


def test_run_point_feeds_attached_registry_on_every_path(fresh_state):
    observer = Observer.measuring()
    stats = runner.run_point("li", 4, 1, "V", SCALE, observer=observer)
    first = observer.metrics.counter("sim.committed").value
    assert first == stats.committed
    # memo hit: the same registry keeps summing
    runner.run_point("li", 4, 1, "V", SCALE, observer=observer)
    assert observer.metrics.counter("sim.committed").value == 2 * first
    # disk hit (fresh memo): machine-level extras come from the payload
    runner.clear_memo()
    fresh = Observer.measuring()
    runner.run_point("li", 4, 1, "V", SCALE, observer=fresh)
    assert fresh.metrics.counter("sim.committed").value == first
    assert any(name.startswith("engine.") for name in fresh.metrics.names())


def test_observer_does_not_change_grid_results(fresh_state):
    plain = run_grid(POINTS, jobs=1)
    runner.clear_memo()
    import shutil, os

    shutil.rmtree(os.environ["REPRO_CACHE_DIR"], ignore_errors=True)
    observed = run_grid(POINTS, jobs=1, metrics=MetricsRegistry())
    for point in POINTS:
        assert observed[point] == plain[point]
