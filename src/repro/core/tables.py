"""Generic set-associative, LRU-replaced lookup table.

Both hardware tables the paper adds — the Table of Loads (4-way x 512
sets) and the Vector Register Map Table (4-way x 64 sets) — are
PC-indexed set-associative structures; this class captures the shared
indexing/LRU/eviction behaviour so each table only implements its payload
semantics.
"""

from __future__ import annotations

from typing import Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class SetAssocTable(Generic[T]):
    """A ``ways`` x ``sets`` table keyed by PC with per-set LRU."""

    def __init__(self, ways: int, sets: int) -> None:
        if ways < 1 or sets < 1:
            raise ValueError("ways and sets must be positive")
        self.ways = ways
        self.sets = sets
        # Each set is a list of (pc, payload), MRU first.
        self._sets: List[List[Tuple[int, T]]] = [[] for _ in range(sets)]
        self.evictions = 0

    def _set_of(self, pc: int) -> List[Tuple[int, T]]:
        return self._sets[pc % self.sets]

    def lookup(self, pc: int) -> Optional[T]:
        """Return the payload for ``pc`` (refreshing LRU), or None."""
        bucket = self._sets[pc % self.sets]
        if bucket:
            head = bucket[0]
            if head[0] == pc:  # MRU hit: no LRU churn, no scan
                return head[1]
            for i in range(1, len(bucket)):
                item = bucket[i]
                if item[0] == pc:
                    bucket.insert(0, bucket.pop(i))
                    return item[1]
        return None

    def peek(self, pc: int) -> Optional[T]:
        """Like :meth:`lookup` but without touching LRU state."""
        bucket = self._sets[pc % self.sets]
        if bucket:
            head = bucket[0]
            if head[0] == pc:
                return head[1]
            for item in bucket:
                if item[0] == pc:
                    return item[1]
        return None

    def insert(self, pc: int, payload: T) -> Optional[T]:
        """Install ``payload`` for ``pc``; returns any evicted payload.

        Replaces an existing entry for the same PC without eviction.
        """
        bucket = self._sets[pc % self.sets]
        for i, (key, _) in enumerate(bucket):
            if key == pc:
                bucket.pop(i)
                bucket.insert(0, (pc, payload))
                return None
        evicted: Optional[T] = None
        if len(bucket) >= self.ways:
            _, evicted = bucket.pop()
            self.evictions += 1
        bucket.insert(0, (pc, payload))
        return evicted

    def invalidate(self, pc: int) -> Optional[T]:
        """Remove the entry for ``pc``; returns its payload if present."""
        bucket = self._sets[pc % self.sets]
        for i, (key, payload) in enumerate(bucket):
            if key == pc:
                bucket.pop(i)
                return payload
        return None

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def occupancy(self) -> float:
        """Filled fraction of the table's ``ways * sets`` capacity."""
        return len(self) / (self.ways * self.sets)

    def items(self):
        """Iterate all ``(pc, payload)`` pairs (MRU-first within sets)."""
        for bucket in self._sets:
            for key, payload in bucket:
                yield key, payload

    # ------------------------------------------------------------------
    # serialization (sampled-simulation checkpoints)
    # ------------------------------------------------------------------

    def snapshot(self, pack) -> List[List]:
        """Serialize contents (and LRU order) as nested lists.

        ``pack`` maps one payload to something JSON-safe; bucket order is
        preserved MRU-first so replacement decisions replay identically
        after :meth:`restore`.
        """
        return [[[pc, pack(payload)] for pc, payload in bucket] for bucket in self._sets]

    def restore(self, snapshot: List[List], unpack) -> None:
        """Install a :meth:`snapshot` (geometry must match; LRU preserved)."""
        if len(snapshot) != self.sets:
            raise ValueError(
                f"snapshot has {len(snapshot)} sets, table has {self.sets}"
            )
        self._sets = [
            [(pc, unpack(payload)) for pc, payload in bucket] for bucket in snapshot
        ]
