"""SPEC95-like suite: construction, determinism, workload character."""

import pytest

from repro.functional import run_program
from repro.workloads import (
    ALL_BENCHMARKS,
    SPEC_FP,
    SPEC_INT,
    build,
    cached_trace,
    is_fp_benchmark,
)
from repro.workloads.spec95 import DEFAULT_SCALE

SCALE = 6_000


@pytest.fixture(scope="module")
def traces():
    return {name: cached_trace(name, SCALE) for name in ALL_BENCHMARKS}


def test_registry_matches_paper_suite():
    assert SPEC_INT == ("go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex")
    assert SPEC_FP == ("swim", "applu", "turb3d", "fpppp")
    assert len(ALL_BENCHMARKS) == 12


def test_unknown_benchmark_rejected():
    with pytest.raises(ValueError):
        build("mcf")


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_benchmark_builds_and_runs(name, traces):
    trace = traces[name]
    assert len(trace) > SCALE * 0.5


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_trace_length_near_scale(name, traces):
    assert len(traces[name]) <= SCALE


def test_deterministic_for_fixed_seed():
    a = run_program(build("gcc", 3000, seed=1), max_instructions=3000)
    b = run_program(build("gcc", 3000, seed=1), max_instructions=3000)
    assert [e.pc for e in a] == [e.pc for e in b]
    assert [e.addr for e in a] == [e.addr for e in b]


def test_seed_changes_data():
    a = build("gcc", 3000, seed=1)
    b = build("gcc", 3000, seed=2)
    assert a.data != b.data


@pytest.mark.parametrize("name", SPEC_FP)
def test_fp_benchmarks_use_fp(name, traces):
    trace = traces[name]
    fp = sum(1 for e in trace if 21 <= e.op <= 30 or e.op in (33, 34))
    assert fp / len(trace) > 0.3


@pytest.mark.parametrize("name", SPEC_INT)
def test_int_benchmarks_avoid_fp(name, traces):
    trace = traces[name]
    fp = sum(1 for e in trace if 21 <= e.op <= 30 or e.op in (33, 34))
    assert fp / len(trace) < 0.05


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_memory_density_is_spec_like(name, traces):
    """SPEC95-era codes retire roughly 25-50% memory operations."""
    trace = traces[name]
    mem = sum(1 for e in trace if e.is_load or e.is_store)
    assert 0.2 < mem / len(trace) < 0.55


def test_is_fp_benchmark():
    assert is_fp_benchmark("swim")
    assert not is_fp_benchmark("gcc")


def test_cached_trace_is_memoized():
    assert cached_trace("li", SCALE) is cached_trace("li", SCALE)


def test_default_scale_reasonable():
    assert 10_000 <= DEFAULT_SCALE <= 1_000_000
