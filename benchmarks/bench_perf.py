"""Simulator-throughput (KIPS) benchmark — the repo's perf trajectory.

Unlike the ``bench_fig*`` files (which regenerate the *paper's* tables),
this benchmark times the simulator itself: thousand simulated instructions
per CPU-second (KIPS) for one representative scalar-mode run and one
V-mode run.  Results are written machine-readably to ``BENCH_perf.json``
at the repository root so successive PRs can track the trend.

Two sections:

* **exact** — the cycle model's raw throughput on the 12k experiment
  scale (the PR-1 hot-loop trajectory);
* **sampled** — the sampled-simulation subsystem at 10x that scale:
  effective KIPS, speedup over an exact run of the same trace, and the
  IPC estimation error it costs (see docs/PERFORMANCE.md for the
  accuracy story).

Plus a **profile** section: per-pipeline-stage wall-clock and
simulated-cycle attribution for each exact point, collected by
:class:`repro.observe.StageProfiler` (see docs/OBSERVABILITY.md).

``--check`` turns the harness into a regression guard for CI: it
re-measures the exact points and fails (exit 1) if the fresh
``min_speedup`` falls more than ``--tolerance`` (default 25%, CI hosts
are noisy) below the value recorded in ``BENCH_perf.json``.

``--observe-check`` guards the observability layer's when-off cost: it
A/B-measures each exact point plain vs with an empty
:class:`repro.observe.Observer` in the same process and fails if the
tracing-off run is more than ``--observe-tolerance`` (default 3%)
slower.

Timing uses :func:`time.process_time` (CPU time), not wall clock: the
simulator is single-threaded and allocation-bound, so CPU time measures
exactly the work the optimization targets, while wall clock on shared /
steal-prone hosts (small cloud VMs) swings by 2x between runs and would
drown the signal.  Best-of-``ROUNDS`` further rejects transient slowdowns
(interrupts, frequency shifts).

``BASELINE_KIPS`` pins the throughput measured on the pre-optimization
code of the PR that introduced this file (same machine, same harness);
``speedup`` in the JSON is current/baseline.  Re-run with::

    PYTHONPATH=src python benchmarks/bench_perf.py

Runs use fresh :class:`~repro.pipeline.machine.Machine` instances on a
pre-built functional trace, so the number isolates the timing model's hot
loop (the target of the optimization work) from trace generation and any
result caching.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.kernel import get_kernel  # noqa: E402
from repro.observe import Observer, StageProfiler  # noqa: E402
from repro.pipeline.config import make_config  # noqa: E402
from repro.pipeline.machine import Machine  # noqa: E402
from repro.sampling import SamplingConfig, run_sampled  # noqa: E402
from repro.workloads.spec95 import cached_trace  # noqa: E402

#: dynamic instructions per timed run.
SCALE = 12_000
#: timed configurations: label -> (benchmark, width, ports, mode).
POINTS = {
    "scalar_noIM": ("compress", 4, 1, "noIM"),
    "scalar_IM": ("compress", 4, 1, "IM"),
    "vector_V": ("swim", 4, 1, "V"),
}
#: best-of repetitions per configuration.
ROUNDS = 5

#: sampled-mode section: 10x the exact scale, default sampling geometry.
SAMPLED_SCALE = 120_000
#: best-of repetitions for the (much longer) sampled/exact 120k runs.
SAMPLED_ROUNDS = 2
#: sampled points use benchmarks from the accuracy-pinned set
#: (tests/sampling/test_accuracy.py) so the recorded ipc_error tracks the
#: subsystem's representative behaviour; the suite-wide error table —
#: outliers included — lives in docs/PERFORMANCE.md.
SAMPLED_POINTS = {
    "scalar_noIM": ("m88ksim", 4, 1, "noIM"),
    "scalar_IM": ("m88ksim", 4, 1, "IM"),
    "vector_V": ("swim", 4, 1, "V"),
}

#: KIPS measured on the pre-optimization code (recorded in the same PR
#: that added the hot-loop work; see docs/PERFORMANCE.md).  Median of
#: nine best-of-5 harness runs against the seed tree, measured with
#: ``time.process_time`` exactly as ``measure_point`` does.
BASELINE_KIPS = {
    "scalar_noIM": 54.4,
    "scalar_IM": 53.6,
    "vector_V": 37.5,
}

RESULT_PATH = REPO_ROOT / "BENCH_perf.json"


def measure_point(
    name: str,
    width: int,
    ports: int,
    mode: str,
    scale: int = SCALE,
    observer: Observer | None = None,
) -> float:
    """Best-of-``ROUNDS`` KIPS for one (benchmark, configuration) point.

    ``observer`` threads a :class:`repro.observe.Observer` into every
    timed run — the ``--observe-check`` guard uses this to price the
    observability layer's dormant cost.
    """
    trace = cached_trace(name, scale)  # build outside the timed region
    best = 0.0
    for _ in range(ROUNDS):
        config = make_config(width, ports, mode)
        machine = Machine(config, trace, observer=observer)
        t0 = time.process_time()
        stats = machine.run()
        elapsed = time.process_time() - t0
        best = max(best, stats.committed / 1000.0 / elapsed)
    return best


def profile_section() -> dict:
    """Pipeline-stage attribution for the exact points (``profile`` key).

    Each point runs once under a :class:`StageProfiler`: the payload
    records which stage's Python is hot (``stage_wall_fraction``) and
    which stages the simulated machine keeps busy
    (``stage_cycle_fraction``).  Profiled runs are bit-identical to plain
    ones, but slower — they are *not* the timed KIPS runs.
    """
    out = {}
    for label, (name, width, ports, mode) in POINTS.items():
        trace = cached_trace(name, SCALE)
        observer = Observer(profiler=StageProfiler())
        Machine(make_config(width, ports, mode), trace, observer=observer).run()
        out[label] = observer.profiler.to_dict()
    return out


def measure_sampled_point(
    name: str,
    width: int,
    ports: int,
    mode: str,
    scale: int = SAMPLED_SCALE,
    sampling: SamplingConfig | None = None,
    rounds: int = SAMPLED_ROUNDS,
) -> dict:
    """Sampled-vs-exact comparison for one point at large scale.

    Returns effective sampled KIPS (committed instructions *estimated*,
    i.e. the full trace, over the sampled run's CPU time), the exact
    run's KIPS on the same trace, their ratio, and the IPC estimation
    error.  Checkpoints are off so the speedup reflects cold warming.
    """
    sampling = sampling or SamplingConfig()
    trace = cached_trace(name, scale)
    config = make_config(width, ports, mode)
    t0 = time.process_time()
    exact = Machine(config, trace).run()
    exact_elapsed = time.process_time() - t0
    best = 0.0
    sampled = None
    for _ in range(rounds):
        t0 = time.process_time()
        sampled = run_sampled(make_config(width, ports, mode), trace, sampling)
        elapsed = time.process_time() - t0
        best = max(best, sampled.committed / 1000.0 / elapsed)
    exact_kips = exact.committed / 1000.0 / exact_elapsed
    return {
        "kips": round(best, 2),
        "exact_kips": round(exact_kips, 2),
        "speedup": round(best / exact_kips, 2),
        "ipc_error": round(sampled.ipc / exact.ipc - 1.0, 4),
    }


def run_benchmark(include_sampled: bool = True) -> dict:
    """Measure every point and assemble the BENCH_perf.json payload."""
    current = {
        label: round(measure_point(*point), 2) for label, point in POINTS.items()
    }
    speedup = {
        label: round(current[label] / BASELINE_KIPS[label], 3) for label in POINTS
    }
    payload = {
        "unit": "KIPS (thousand simulated instructions / second)",
        "scale": SCALE,
        "rounds": ROUNDS,
        "kernel": get_kernel().name,
        "baseline_kips": BASELINE_KIPS,
        "current_kips": current,
        "speedup": speedup,
        "min_speedup": min(speedup.values()),
    }
    if include_sampled:
        defaults = SamplingConfig()
        points = {
            label: measure_sampled_point(*point)
            for label, point in SAMPLED_POINTS.items()
        }
        payload["sampled"] = {
            "scale": SAMPLED_SCALE,
            "window": defaults.window,
            "interval": defaults.interval,
            "points": points,
            "min_speedup": min(p["speedup"] for p in points.values()),
            "max_abs_ipc_error": max(abs(p["ipc_error"]) for p in points.values()),
        }
        payload["profile"] = profile_section()
    return payload


def observe_check(tolerance: float) -> int:
    """CI guard: the *dormant* observability layer must cost (almost)
    nothing.

    Measures each exact point twice on this machine — once plain
    (``observer=None``) and once with an empty :class:`Observer` (all
    parts None, i.e. exactly what an instrumented-but-off run carries)
    — and fails if the observed KIPS falls more than ``tolerance`` below
    the plain KIPS on any point.  Same-process A/B keeps the guard
    meaningful across CI hosts of different speeds, unlike comparing
    against a recorded-on-another-machine number.
    """
    failed = False
    for label, point in POINTS.items():
        plain = measure_point(*point)
        observed = measure_point(*point, observer=Observer())
        ratio = observed / plain
        status = "OK" if ratio >= 1.0 - tolerance else "FAIL"
        if status == "FAIL":
            failed = True
        print(
            f"{label}: plain {plain:.2f} KIPS, tracing-off {observed:.2f} KIPS "
            f"({ratio:.1%}) {status}"
        )
    if failed:
        print(
            "FAIL: dormant observability overhead exceeds "
            f"{tolerance:.0%} on at least one point"
        )
        return 1
    print(f"OK: tracing-off throughput within {tolerance:.0%} of plain")
    return 0


def check_regression(tolerance: float) -> int:
    """CI guard: fail when throughput regresses below the recorded floor.

    Two floors, both scaled by ``tolerance``: the aggregate
    ``min_speedup`` (the historical guard) and every *per-point* KIPS in
    ``current_kips`` — so a regression localized to one configuration
    (e.g. only the V-mode engine path) cannot hide behind another
    point's headroom.
    """
    recorded = json.loads(RESULT_PATH.read_text())
    floor = recorded["min_speedup"] * (1.0 - tolerance)
    fresh = run_benchmark(include_sampled=False)
    print(json.dumps(fresh, indent=2))
    print(
        f"min_speedup: fresh {fresh['min_speedup']:.3f} vs recorded "
        f"{recorded['min_speedup']:.3f} (floor {floor:.3f})"
    )
    failed = False
    if fresh["min_speedup"] < floor:
        print("FAIL: simulator throughput regressed below the recorded floor")
        failed = True
    for label, kips in recorded["current_kips"].items():
        point_floor = kips * (1.0 - tolerance)
        got = fresh["current_kips"].get(label, 0.0)
        status = "OK" if got >= point_floor else "FAIL"
        if status == "FAIL":
            failed = True
        print(
            f"{label}: fresh {got:.2f} KIPS vs recorded {kips:.2f} "
            f"(floor {point_floor:.2f}) {status}"
        )
    if failed:
        return 1
    print("OK")
    return 0


def append_history(payload: dict, timestamp: str | None) -> list:
    """The ``history`` array for the fresh payload: every entry recorded
    in the existing BENCH_perf.json plus one for this run.

    Each entry is the measurement summary (timestamp, kernel backend,
    per-point KIPS, speedups) — the full trajectory across PRs stays
    machine-readable instead of being overwritten by each rewrite.  The
    timestamp comes from the ``--timestamp`` CLI arg (e.g.
    ``--timestamp "$(date -u +%Y-%m-%dT%H:%M:%SZ)"``) so the harness
    itself stays deterministic; ``null`` is recorded when absent.
    """
    history: list = []
    if RESULT_PATH.exists():
        try:
            history = json.loads(RESULT_PATH.read_text()).get("history", [])
        except (ValueError, OSError):
            history = []
    history.append(
        {
            "timestamp": timestamp,
            "kernel": payload["kernel"],
            "current_kips": payload["current_kips"],
            "speedup": payload["speedup"],
            "min_speedup": payload["min_speedup"],
        }
    )
    return history


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--timestamp",
        default=None,
        metavar="ISO8601",
        help="timestamp recorded with this run's history entry "
        '(e.g. "$(date -u +%%Y-%%m-%%dT%%H:%%M:%%SZ)")',
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression guard: compare fresh min_speedup against BENCH_perf.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop below the recorded min_speedup (default 0.25)",
    )
    parser.add_argument(
        "--observe-check",
        action="store_true",
        help="guard: tracing-off KIPS must stay within --observe-tolerance "
        "of a plain (observer=None) run measured in the same process",
    )
    parser.add_argument(
        "--observe-tolerance",
        type=float,
        default=0.03,
        help="allowed fractional tracing-off slowdown (default 0.03)",
    )
    args = parser.parse_args(argv)
    if args.observe_check:
        return observe_check(args.observe_tolerance)
    if args.check:
        return check_regression(args.tolerance)
    payload = run_benchmark()
    payload["history"] = append_history(payload, args.timestamp)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    return 0


def test_perf_benchmark_runs():
    """Smoke: the harness measures nonzero throughput (no regression gate
    here — wall-clock assertions do not belong in correctness CI)."""
    kips = measure_point("compress", 4, 1, "noIM", scale=2_500)
    assert kips > 0


def test_observe_check_measures_both_sides():
    """Smoke: the A/B overhead guard produces comparable measurements."""
    plain = measure_point("compress", 4, 1, "noIM", scale=2_500)
    observed = measure_point(
        "compress", 4, 1, "noIM", scale=2_500, observer=Observer()
    )
    assert plain > 0 and observed > 0


def test_profile_section_attributes_stages():
    """Smoke: a profiled run lands nonzero wall-clock on every stage."""
    trace = cached_trace("compress", 2_500)
    observer = Observer(profiler=StageProfiler())
    Machine(make_config(4, 1, "noIM"), trace, observer=observer).run()
    payload = observer.profiler.to_dict()
    assert payload["cycles"] > 0
    assert sum(payload["stage_seconds"].values()) > 0
    # fractions are rounded to 4 places in the payload; allow that slack
    assert abs(sum(payload["stage_wall_fraction"].values()) - 1.0) < 1e-3


def test_sampled_harness_runs():
    """Smoke: the sampled section measures at a tiny scale too."""
    result = measure_sampled_point(
        "compress", 4, 1, "noIM",
        scale=6_000, sampling=SamplingConfig(window=200, interval=1000), rounds=1,
    )
    assert result["kips"] > 0
    assert abs(result["ipc_error"]) < 1.0


if __name__ == "__main__":
    sys.exit(main())
