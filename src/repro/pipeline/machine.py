"""Cycle-level out-of-order superscalar timing model (trace-driven).

The machine replays a functional trace through the structures of Table 1:
fetch (gshare + I-cache), dispatch/rename (with the V/S vector extension of
Fig 6 when vectorization is on), a unified instruction window (ROB), a
load/store queue with store-to-load forwarding and conservative
disambiguation ("loads may execute when prior store addresses are known"),
per-class functional-unit pools with the paper's latencies, 1/2/4 L1 data
ports (scalar or wide), and in-order commit.

Dynamic vectorization hooks (V mode only):

* dispatch consults :class:`~repro.core.engine.VectorizationEngine` to turn
  loads/arithmetic into vector triggers or validation ops;
* the memory stage schedules speculative vector element fetches over
  left-over wide-bus capacity;
* commit performs the §3.6 store coherence check, F-flag bookkeeping and
  GMRBB tracking, and fires misspeculation recovery squashes;
* branch-misprediction recovery leaves all vector state intact (§3.5).

The model is trace-driven: wrong-path instructions are not simulated, a
misprediction costs fetch starvation until the branch resolves plus a
refill penalty (DESIGN.md §5.1).
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heapify, heappop, heappush
from operator import attrgetter
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..core.engine import DecodeKind, VectorizationEngine
from ..frontend.fetch import FetchUnit, FetchedInstr
from ..functional.memory import MemoryImage
from ..functional.semantics import s64
from ..functional.trace import Trace, TraceEntry
from ..isa.opcodes import (
    FU_LATENCY,
    FuClass,
    Opcode,
    VECTORIZABLE_ALU_OPS,
    fu_class_of,
)
from ..isa.registers import NO_REG, ZERO_REG
from ..memory.hierarchy import MemoryHierarchy
from ..memory.ports import DataPorts
from ..observe import profile as observe_profile
from ..observe.events import FLUSH_BRANCH, VFETCH_ISSUE
from .config import MachineConfig
from .stats import SimStats

# Instruction kinds inside the window.
K_SCALAR = 0  # ALU / control / nop-like, executes on a scalar FU
K_LOAD = 1
K_STORE = 2
K_VALIDATION = 3  # checks one vector element, no FU, no memory port
K_TRIGGER = 4  # created a vector instance; completes with its start element

#: dependence token: None (ready), a producing InFlight, or (reg, elem).
Dep = Union[None, "InFlight", Tuple]

#: opcode sets for the dispatch fast path (avoids per-entry property calls
#: on the TraceEntry dataclass in the hottest loops).
_LOAD_OPS = frozenset((Opcode.LD, Opcode.FLD))
_STORE_OPS = frozenset((Opcode.ST, Opcode.FST))
_MEM_OPS = _LOAD_OPS | _STORE_OPS

#: mul/div scalar FUs are unpipelined (SimpleScalar convention).
_UNPIPELINED_FUS = frozenset(
    (FuClass.INT_MUL, FuClass.INT_DIV, FuClass.FP_MUL, FuClass.FP_DIV)
)

#: single-source fp/convert forms whose missing rs2 is NOT an immediate.
_NO_IMM_OPS = frozenset(
    (Opcode.FNEG, Opcode.FABS, Opcode.FMOV, Opcode.FSQRT, Opcode.ITOF, Opcode.FTOI)
)


class InFlight:
    """One dynamic instruction occupying the window."""

    __slots__ = (
        "seq",
        "entry",
        "kind",
        "fu_class",
        "static_ready",
        "deps",
        "base_dep",
        "data_dep",
        "done_at",
        "addr",
        "mispredicted",
        "redirected",
        "vreg",
        "velem",
        "pred_addr",
        "pred_mismatch",
        "counts_as_validation",
        "vrmt_rollback",
        "saved_renames",
        "mem_queued",
        "waiters",
        "squashed",
    )

    def __init__(self, seq: int, entry: TraceEntry, kind: int) -> None:
        self.seq = seq
        self.entry = entry
        self.kind = kind
        self.fu_class = FuClass.NONE
        self.static_ready = 0
        self.deps: List[Dep] = []
        self.base_dep: Dep = None
        self.data_dep: Dep = None
        self.done_at: Optional[int] = None
        self.addr = entry.addr
        self.mispredicted = False
        self.redirected = False
        self.vreg = None
        self.velem = -1
        self.pred_addr: Optional[int] = None
        #: True when pred_addr is set and differs from the actual address.
        #: Both inputs are fixed at dispatch, so the validation outcome of
        #: the address check is precomputed once (execute hot path).
        self.pred_mismatch = False
        self.counts_as_validation = False
        self.vrmt_rollback = None
        self.saved_renames: List[Tuple[int, Tuple]] = []
        self.mem_queued = False
        #: instructions sleeping until this one's completion time is known
        #: (lazily created; see Machine._execute's dependence check).
        self.waiters: Optional[List["InFlight"]] = None
        #: True once removed from the window by a squash — a stale entry on
        #: some producer's ``waiters`` list must not be re-woken.
        self.squashed = False


#: rename-map entries: ("S", producer-or-None) / ("V", reg, elem).
_READY = ("S", None)

_SEQ_KEY = attrgetter("seq")


class Machine:
    """One timing simulation of one trace under one configuration."""

    def __init__(
        self,
        config: MachineConfig,
        trace: Trace,
        hierarchy: Optional[MemoryHierarchy] = None,
        gshare=None,
        indirect=None,
        observer=None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.stats = SimStats()
        # Observability: the default (observer=None) leaves every hook
        # dormant — emission sites cost one `is not None` test and the
        # run loop is the unobserved one.
        self.observer = observer
        bus = observer.bus if observer is not None else None
        self._bus = bus
        # Sampled simulation passes in a pre-warmed hierarchy and
        # predictors (repro.sampling); exact mode builds them cold.
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy(config.hierarchy)
        self.hierarchy.bus = bus
        self.ports = DataPorts(config.ports, config.wide_bus)
        self.fetch_unit = FetchUnit(
            trace,
            self.hierarchy,
            config.width,
            config.gshare_entries,
            gshare=gshare,
            indirect=indirect,
        )
        self.fetch_unit.bus = bus
        #: architectural memory as of the last committed store — the image
        #: speculative vector loads read from.
        self.commit_memory: MemoryImage = trace.initial_memory.copy()
        self.engine: Optional[VectorizationEngine] = (
            VectorizationEngine(config, self.stats, observer) if config.vectorize else None
        )

        self.rob: Deque[InFlight] = deque()
        self.lsq: List[InFlight] = []
        self.waiting: List[InFlight] = []
        #: validations/triggers whose element has a *known* completion time
        #: in the future, parked off the per-cycle scan until that cycle.
        #: Min-heap of (wake_cycle, seq, InFlight) — see _execute for the
        #: exactness argument.
        self._parked: List[Tuple[int, int, InFlight]] = []
        self.mem_queue: List[InFlight] = []
        self.fetch_queue: Deque[FetchedInstr] = deque()
        self.rename: Dict[int, Tuple] = {}
        self.committed_vec_map: Dict[int, Optional[Tuple]] = {}
        self.committed_count = 0
        self._max_dispatched_seq = -1
        self._now = 0
        #: scalar FU pools: class -> list of unit free-at cycles.
        self.fu_free = {
            cls: [0] * count for cls, count in config.fu_pool_sizes().items()
        }
        #: (branch_seq, resolved_cycle) windows for Fig 10 accounting.
        self.cfi_windows: Deque[Tuple[int, int]] = deque()
        #: per-pc backward-branch flags for GMRBB tracking.
        program = trace.program
        self._is_backward = [program.is_backward(pc) for pc in range(len(program))]
        # Hoisted configuration scalars (read every cycle in the hot loop;
        # going through the config dataclass costs two attribute lookups).
        self._width = config.width
        self._commit_width = config.commit_width
        self._rob_size = config.rob_size
        self._lsq_size = config.lsq_size
        self._fetch_queue_size = config.fetch_queue_size
        self._mispredict_penalty = config.mispredict_penalty
        self._wide_bus = config.wide_bus
        self._line_bytes = config.hierarchy.l1d_line
        self._max_store_commit = config.vector.max_store_commit
        self._block_scalar_operand = config.vector.block_on_scalar_operand

    # ==================================================================
    # helpers
    # ==================================================================

    def _dep_time(self, dep: Dep) -> Optional[int]:
        """Cycle at which a dependence token's value is available."""
        if dep is None:
            return 0
        if isinstance(dep, tuple):
            reg, elem = dep
            return reg.r_time[elem]
        return dep.done_at

    def _deps_ready(self, fl: InFlight, now: int) -> bool:
        for dep in fl.deps:
            t = self._dep_time(dep)
            if t is None or t > now:
                return False
        return fl.static_ready <= now

    def _rename_ref(self, logical: int) -> Tuple:
        if logical == ZERO_REG:
            return _READY
        return self.rename.get(logical, _READY)

    def _dep_of_ref(self, ref: Tuple) -> Dep:
        if ref[0] == "V":
            return (ref[1], ref[2])
        return ref[1]

    def _dep_of_reg(self, logical: int) -> Dep:
        """Dependence token for reading ``logical`` (combined
        :meth:`_rename_ref` + :meth:`_dep_of_ref`, dispatch hot path)."""
        if logical == ZERO_REG:
            return None
        ref = self.rename.get(logical, _READY)
        if ref[0] == "V":
            return (ref[1], ref[2])
        return ref[1]

    def _acquire_fu(self, fu_class: FuClass, now: int) -> bool:
        """Grab a scalar functional unit for an op starting this cycle."""
        pool = self.fu_free.get(fu_class)
        if pool is None:
            return True
        for i, free_at in enumerate(pool):
            if free_at <= now:
                # Simple units are fully pipelined; mul/div units are busy
                # for the whole operation.
                if fu_class in _UNPIPELINED_FUS:
                    pool[i] = now + FU_LATENCY[fu_class]
                else:
                    pool[i] = now + 1
                return True
        return False

    # ==================================================================
    # commit
    # ==================================================================

    def _commit(self, now: int) -> None:
        committed = 0
        stores_this_cycle = 0
        engine = self.engine
        rob = self.rob
        stats = self.stats
        ports = self.ports
        commit_width = self._commit_width
        max_store_commit = self._max_store_commit
        is_backward = self._is_backward
        vec_map = self.committed_vec_map
        cfi_windows = self.cfi_windows
        while rob and committed < commit_width:
            fl = rob[0]
            t = fl.done_at
            if t is None or t > now:
                break
            entry = fl.entry
            kind = fl.kind
            conflict = False
            if kind == K_STORE:
                if engine is not None and stores_this_cycle >= max_store_commit:
                    break
                if ports.available() == 0:
                    break
                ready = self.hierarchy.data_access(fl.addr, now, is_write=True)
                if ready is None:  # MSHR full
                    break
                ports.take()
                ports.open_write()
                stats.write_accesses += 1
                self.commit_memory.store(fl.addr, entry.value)
                stores_this_cycle += 1
                stats.committed_stores += 1
                if engine is not None:
                    conflict = engine.on_store_commit(fl.addr, now)

            rob.popleft()
            if kind == K_LOAD or kind == K_STORE:
                # In-order commit means the oldest memory op leaves first,
                # so this is lsq[0] except across a just-flushed window.
                lsq = self.lsq
                if lsq[0] is fl:
                    del lsq[0]
                else:
                    lsq.remove(fl)
            committed += 1
            stats.committed += 1
            if cfi_windows:
                self._account_cfi(fl, now)

            if engine is not None:
                # Everything below maintains vector-side commit state, which
                # does not exist in the scalar (noIM/IM) machines.
                if kind >= K_VALIDATION:  # K_VALIDATION or K_TRIGGER
                    engine.on_validation_commit(fl, now, self.ports)

                rd = entry.rd
                if rd != NO_REG and rd != ZERO_REG:
                    old = vec_map.get(rd)
                    if old is not None:
                        engine.set_element_freed(old[0], old[1], old[2], now)
                    if kind >= K_VALIDATION:
                        vec_map[rd] = (fl.vreg, fl.vreg.gen, fl.velem)
                    else:
                        vec_map[rd] = None

                if is_backward[entry.pc] and entry.is_control:
                    engine.on_backward_branch_commit(entry.pc, now)

            if conflict:
                # §3.6: squash everything younger than the store.
                self._flush_from(fl.seq + 1, now + 1 + self._mispredict_penalty, now)
                break
        self.committed_count += committed

    def _account_cfi(self, fl: InFlight, now: int) -> None:
        """Fig 10: count committed instructions in the 100 after each
        mispredicted branch, and which of them reuse pre-flush vector work."""
        windows = self.cfi_windows
        seq = fl.seq
        while windows and seq > windows[0][0] + 100:
            windows.popleft()
        if not windows:
            return
        for bseq, resolved in windows:
            if bseq < seq <= bseq + 100:
                self.stats.cfi_window_instructions += 1
                if (
                    fl.counts_as_validation
                    and fl.vreg is not None
                    and fl.velem >= 0
                ):
                    # Fig 10's metric: the instruction needed no execution —
                    # it validated vector state that survived the flush.
                    self.stats.cfi_reused += 1
                    rt = fl.vreg.r_time[fl.velem]
                    if rt is not None and rt <= resolved:
                        self.stats.cfi_precomputed += 1

    # ==================================================================
    # execute / memory
    # ==================================================================

    def _execute(self, now: int) -> None:
        issues_left = self._width
        engine = self.engine
        stats = self.stats
        fu_latency = FU_LATENCY
        acquire_fu = self._acquire_fu
        try_load = self._try_load
        # Parked validations/triggers whose wake cycle has arrived rejoin
        # the scan.  Both lists are seq-sorted, so extend+sort is a cheap
        # two-run merge and the scan order matches the never-parked order.
        parked = self._parked
        if parked and parked[0][0] <= now:
            waiting = self.waiting
            while parked and parked[0][0] <= now:
                waiting.append(heappop(parked)[2])
            waiting.sort(key=_SEQ_KEY)
        still_waiting: List[InFlight] = []
        keep = still_waiting.append
        flush_seq: Optional[int] = None
        for fl in self.waiting:
            if flush_seq is not None:
                if fl.seq < flush_seq:
                    keep(fl)
                continue
            # Dependence check (inlined _deps_ready), with compaction: a
            # satisfied token can never become unsatisfied again (done_at
            # and r_time are written once per object, ``now`` only grows),
            # so the dep list is dropped the first cycle everything is
            # ready and later rescans skip straight to the structural
            # checks.  A blocked instruction leaves the scan entirely
            # instead of being rescanned every cycle: when the first
            # blocking token's time is already known it parks on the timed
            # heap until that cycle; when the producer has not issued yet
            # (done_at still None) it sleeps on the producer's ``waiters``
            # list and is moved to the heap the moment the producer's
            # completion time is set.  Either way it rejoins the scan — in
            # seq order — exactly at the first cycle the original
            # every-cycle rescan could have advanced past that token, so
            # the elided rescans are unobservable.
            deps = fl.deps
            if deps:
                blocked_t = 0
                blocked_dep = None
                for dep in deps:
                    if dep is None:
                        continue
                    if type(dep) is tuple:
                        t = dep[0].r_time[dep[1]]
                    else:
                        t = dep.done_at
                    if t is None or t > now:
                        blocked_t = t
                        blocked_dep = dep
                        break
                if blocked_dep is not None:
                    if blocked_t is not None:
                        heappush(parked, (blocked_t, fl.seq, fl))
                    elif type(blocked_dep) is tuple:
                        # Unscheduled vector element: no wake hook; rescan.
                        keep(fl)
                    else:
                        w = blocked_dep.waiters
                        if w is None:
                            blocked_dep.waiters = [fl]
                        else:
                            w.append(fl)
                    continue
                fl.deps = []
            if fl.static_ready > now:
                keep(fl)
                continue
            kind = fl.kind
            if kind >= K_VALIDATION:  # K_VALIDATION or K_TRIGGER
                # Inlined engine.validation_check: element still live and
                # (for loads) predicted address matches the actual one —
                # the address comparison was precomputed at dispatch.
                vreg = fl.vreg
                if vreg.freed or vreg.defunct or fl.pred_mismatch:
                    # Misspeculation: recover to scalar from this instruction.
                    engine.on_validation_failure(fl, now)
                    flush_seq = fl.seq
                    continue
                t = vreg.r_time[fl.velem]  # inlined vreg.elem_done
                if t is not None:
                    if t <= now:
                        fl.done_at = now + 1
                    else:
                        # The completion time is known and r_time is
                        # write-once while this op is in flight (its U flag
                        # pins the register against freeing/recycling), so
                        # the op cannot become ready before cycle ``t``.
                        # It can only *fail* early via a defunct flip, and
                        # both defunct writers already wake it: a store-
                        # coherence conflict flushes everything younger
                        # than the committing store (which includes every
                        # parked op), and a validation failure drains the
                        # park heap below.  Parking is therefore exact.
                        heappush(parked, (t, fl.seq, fl))
                else:
                    keep(fl)
                continue

            if kind == K_STORE:
                # Address generation + data capture; memory written at commit.
                fl.done_at = now + 1
                continue

            if kind == K_LOAD:
                if issues_left <= 0:
                    keep(fl)
                    continue
                status = try_load(fl, now)
                if status == "wait":
                    keep(fl)
                else:
                    issues_left -= 1
                continue

            # Scalar ALU / control / nop.
            fu_class = fl.fu_class
            if fu_class is FuClass.NONE:
                fl.done_at = now + 1
            else:
                if issues_left <= 0:
                    keep(fl)
                    continue
                if not acquire_fu(fu_class, now):
                    keep(fl)
                    continue
                issues_left -= 1
                fl.done_at = now + fu_latency[fu_class]
            # Only scalar ALU ops and scalar loads ever appear as "S"
            # producers in the rename map, so only they can hold sleepers
            # (loads wake from _try_load/_schedule_memory instead).
            if fl.waiters is not None:
                self._wake_waiters(fl)
            if fl.mispredicted and not fl.redirected:
                fl.redirected = True
                stats.branch_mispredicts += 1
                resolve = fl.done_at
                if self._bus is not None:
                    self._bus.emit(
                        now, FLUSH_BRANCH, pc=fl.entry.pc, seq=fl.seq,
                        resolve=resolve,
                    )
                self.fetch_unit.redirect(
                    fl.seq + 1, resolve + self._mispredict_penalty
                )
                self.cfi_windows.append((fl.seq, resolve))

        if flush_seq is not None and parked:
            # The failure defuncted a register; any parked op — in
            # particular an *older* validation of the same register — must
            # be rescanned so it notices the flip on the next cycle, just
            # as an unparked entry would.  (Younger ones are flushed below.)
            still_waiting.extend(e[2] for e in parked)
            del parked[:]
            still_waiting.sort(key=_SEQ_KEY)
        self.waiting = still_waiting
        if flush_seq is not None:
            self._flush_from(flush_seq, now + 1 + self._mispredict_penalty, now)
        if self.mem_queue or (engine is not None and engine.pending_fetches):
            self._schedule_memory(now)

    def _wake_waiters(self, fl: InFlight) -> None:
        """``fl``'s completion time just became known: move its sleepers to
        the timed park heap so they rejoin the execute scan at that cycle.
        Entries squashed while asleep are dropped (their re-fetched
        incarnations re-register themselves)."""
        done = fl.done_at
        parked = self._parked
        for c in fl.waiters:
            if not c.squashed:
                heappush(parked, (done, c.seq, c))
        fl.waiters = None

    def _try_load(self, fl: InFlight, now: int) -> str:
        """Disambiguate a ready load; returns 'wait', 'forwarded' or 'queued'."""
        # All older stores must have known addresses (their base dep ready).
        my_addr = fl.addr
        my_seq = fl.seq
        forwarding_store: Optional[InFlight] = None
        for other in self.lsq:
            if other.seq >= my_seq:
                break
            if other.kind != K_STORE:
                continue
            dep = other.base_dep  # inlined _dep_time
            if dep is None:
                t = 0
            elif type(dep) is tuple:
                t = dep[0].r_time[dep[1]]
            else:
                t = dep.done_at
            if t is None or t + 1 > now:
                return "wait"
            if other.addr == my_addr:
                forwarding_store = other  # youngest older match wins
        if forwarding_store is not None:
            dep = forwarding_store.data_dep
            if dep is None:
                t = 0
            elif type(dep) is tuple:
                t = dep[0].r_time[dep[1]]
            else:
                t = dep.done_at
            if t is None or t > now:
                return "wait"
            fl.done_at = now + 1
            if fl.waiters is not None:
                self._wake_waiters(fl)
            self.stats.forwarded_loads += 1
            return "forwarded"
        self.mem_queue.append(fl)
        fl.mem_queued = True
        return "queued"

    def _schedule_memory(self, now: int) -> None:
        """Issue L1 data-port transactions: scalar loads, then (V mode)
        speculative vector element fetches over the remaining capacity."""
        ports = self.ports
        if ports.available() == 0:
            return
        engine = self.engine
        if not self.mem_queue and (engine is None or not engine.pending_fetches):
            return
        if not self._wide_bus:
            # Scalar buses: one word per port per transaction.
            remaining: List[InFlight] = []
            queue = self.mem_queue
            for i, fl in enumerate(queue):
                if ports.available() == 0:
                    remaining.extend(queue[i:])
                    break
                ready = self.hierarchy.data_access(fl.addr, now)
                if ready is None:  # MSHR full; retry next cycle
                    remaining.extend(queue[i:])
                    break
                ports.take()
                txn = ports.open_read()
                ports.add_useful(txn, 1)
                self.stats.read_accesses += 1
                self.stats.scalar_loads_to_memory += 1
                fl.done_at = ready
                if fl.waiters is not None:
                    self._wake_waiters(fl)
            self.mem_queue = remaining
            return

        # Wide bus: group pending reads by line; one access serves up to 4.
        line_bytes = self._line_bytes
        mem_queue = self.mem_queue
        groups: List[Tuple[int, List]] = []
        index: Dict[int, int] = {}
        for fl in mem_queue:
            line = fl.addr - (fl.addr % line_bytes)
            gi = index.get(line)
            if gi is not None and len(groups[gi][1]) < 4:
                groups[gi][1].append(("scalar", fl))
            else:
                index[line] = len(groups)
                groups.append((line, [("scalar", fl)]))
        taken_fetches = []
        if engine is not None:
            # Up to one line group per free port, four elements per group.
            budget = 4 * ports.available()
            taken_fetches = engine.take_fetches(budget)
            for reg, elem, addr in taken_fetches:
                line = addr - (addr % line_bytes)
                gi = index.get(line)
                if gi is not None and len(groups[gi][1]) < 4:
                    groups[gi][1].append(("vector", (reg, elem, addr)))
                else:
                    index[line] = len(groups)
                    groups.append((line, [("vector", (reg, elem, addr))]))

        served_scalar = set()
        served_vector = set()
        blocked = False
        bus = self._bus
        for line, members in groups:
            if blocked or ports.available() == 0:
                break
            ready = self.hierarchy.data_access(line, now)
            if ready is None:  # MSHR full: stop issuing this cycle
                blocked = True
                break
            ports.take()
            txn = ports.open_read()
            self.stats.read_accesses += 1
            scalar_words = None
            spec_words = 0
            for tag, payload in members:
                if tag == "scalar":
                    fl = payload
                    fl.done_at = ready
                    if fl.waiters is not None:
                        self._wake_waiters(fl)
                    if scalar_words is None:
                        scalar_words = {fl.addr}
                    else:
                        scalar_words.add(fl.addr)
                    served_scalar.add(id(fl))
                    self.stats.scalar_loads_to_memory += 1
                else:
                    reg, elem, addr = payload
                    # Apply the architectural write-back conversion (LD
                    # wraps to int64, FLD coerces to float): a raw memory
                    # word can be the other domain's type — e.g. an FST'd
                    # float re-read by LD — and downstream vector ALU
                    # instances must see what a scalar consumer would.
                    word = self.commit_memory.load(addr)
                    reg.values[elem] = (
                        float(word) if reg.fp_load else s64(int(word))
                    )
                    reg.r_time[elem] = ready
                    reg.txn_ids[elem] = txn
                    spec_words += 1
                    served_vector.add((id(reg), elem))
                    if bus is not None:
                        bus.emit(
                            now, VFETCH_ISSUE, pc=reg.pc,
                            elem=elem, addr=addr, ready=ready,
                        )
            if scalar_words:
                ports.add_useful(txn, len(scalar_words))
            if spec_words:
                ports.add_speculative(txn, spec_words)

        if served_scalar:
            self.mem_queue = [fl for fl in mem_queue if id(fl) not in served_scalar]
        if taken_fetches:
            if served_vector:
                engine.requeue_fetches(
                    [
                        item
                        for item in taken_fetches
                        if (id(item[0]), item[1]) not in served_vector
                    ]
                )
            else:
                engine.requeue_fetches(taken_fetches)

    # ==================================================================
    # dispatch
    # ==================================================================

    def _dispatch(self, now: int) -> None:
        """Rename and insert up to ``width`` fetched instructions into the
        window.  The per-instruction body (the old ``_dispatch_one``) is
        inlined into the loop: it runs once per simulated instruction and
        the call overhead was measurable."""
        dispatched = 0
        engine = self.engine
        width = self._width
        rob_size = self._rob_size
        lsq_size = self._lsq_size
        fetch_queue = self.fetch_queue
        rob = self.rob
        lsq = self.lsq
        waiting = self.waiting
        stats = self.stats
        rename = self.rename
        # The config-flag and opcode-class guards of
        # _blocked_on_scalar_operand are evaluated inline so the common
        # case (non-vectorizable op, or the feature disabled) costs no call.
        block_scalar = engine is not None and self._block_scalar_operand
        max_seq = self._max_dispatched_seq
        ready_at = now + 1
        while fetch_queue and dispatched < width:
            fi = fetch_queue[0]
            entry = fi.entry
            op = entry.op
            if len(rob) >= rob_size:
                break
            if op in _MEM_OPS and len(lsq) >= lsq_size:
                break
            is_valu = op in VECTORIZABLE_ALU_OPS
            if (
                block_scalar
                and is_valu
                and self._blocked_on_scalar_operand(entry, now)
            ):
                stats.scalar_operand_stall_cycles += 1
                break
            fetch_queue.popleft()
            dispatched += 1

            seq = entry.seq
            first_time = seq > max_seq
            if first_time:
                max_seq = seq
                self._max_dispatched_seq = seq
            is_load = op in _LOAD_OPS

            decision = None
            if engine is not None:
                if is_load:
                    decision = engine.decode_load(entry, now, first_time)
                elif is_valu and entry.rd != NO_REG:
                    decision = engine.decode_alu(entry, self._src_descs(entry), now)

            if decision is not None and decision.kind is not DecodeKind.SCALAR:
                kind = (
                    K_VALIDATION
                    if decision.kind is DecodeKind.VALIDATION
                    else K_TRIGGER
                )
                fl = InFlight(seq, entry, kind)
                fl.vreg = decision.reg
                fl.velem = decision.elem
                pred = decision.pred_addr
                fl.pred_addr = pred
                fl.pred_mismatch = pred is not None and pred != entry.addr
                fl.counts_as_validation = decision.counts_as_validation
                fl.vrmt_rollback = decision.vrmt_rollback
                fl.static_ready = ready_at
                if is_load:
                    # The address check needs the base register (AGU).
                    fl.deps.append(self._dep_of_reg(entry.rs1))
                self._set_rename(fl, entry.rd, ("V", decision.reg, decision.elem))
                rob.append(fl)
                waiting.append(fl)
                continue

            # A scalar decision may still have touched the VRMT (entry
            # invalidated or chain attempt failed); its rollback data is
            # attached below.  The dependence-token reads inline
            # _dep_of_reg (hot path).
            if is_load:
                fl = InFlight(seq, entry, K_LOAD)
                fl.fu_class = FuClass.MEM
                src = entry.rs1
                if src == ZERO_REG:
                    dep = None
                else:
                    ref = rename.get(src, _READY)
                    dep = (ref[1], ref[2]) if ref[0] == "V" else ref[1]
                fl.base_dep = dep
                fl.deps.append(dep)
                rd = entry.rd
                if rd != NO_REG and rd != ZERO_REG:  # inlined _set_rename
                    fl.saved_renames.append((rd, rename.get(rd, _READY)))
                    rename[rd] = ("S", fl)
                lsq.append(fl)
            elif op in _STORE_OPS:
                fl = InFlight(seq, entry, K_STORE)
                fl.fu_class = FuClass.MEM
                src = entry.rs1
                if src == ZERO_REG:
                    base = None
                else:
                    ref = rename.get(src, _READY)
                    base = (ref[1], ref[2]) if ref[0] == "V" else ref[1]
                src = entry.rs2
                if src == ZERO_REG:
                    data = None
                else:
                    ref = rename.get(src, _READY)
                    data = (ref[1], ref[2]) if ref[0] == "V" else ref[1]
                fl.base_dep = base
                fl.data_dep = data
                fl.deps.append(base)
                fl.deps.append(data)
                lsq.append(fl)
            else:
                fl = InFlight(seq, entry, K_SCALAR)
                fl.fu_class = (
                    FuClass.NONE
                    if (op is Opcode.NOP or op is Opcode.HALT)
                    else fu_class_of(op)
                )
                deps = fl.deps
                src = entry.rs1
                if src != NO_REG and src != ZERO_REG:
                    ref = rename.get(src, _READY)
                    deps.append((ref[1], ref[2]) if ref[0] == "V" else ref[1])
                src = entry.rs2
                if src != NO_REG and src != ZERO_REG:
                    ref = rename.get(src, _READY)
                    deps.append((ref[1], ref[2]) if ref[0] == "V" else ref[1])
                rd = entry.rd
                if rd != NO_REG and rd != ZERO_REG:  # inlined _set_rename
                    fl.saved_renames.append((rd, rename.get(rd, _READY)))
                    rename[rd] = ("S", fl)
            if decision is not None:
                fl.vrmt_rollback = decision.vrmt_rollback
            fl.static_ready = ready_at
            fl.mispredicted = fi.mispredicted
            rob.append(fl)
            waiting.append(fl)
        stats.fetched += dispatched

    def _blocked_on_scalar_operand(self, entry: TraceEntry, now: int) -> bool:
        """§3.2 / Fig 7: an instruction that *was previously vectorized*
        with a scalar register operand must compare that register's current
        value against the VRMT's captured value before it can be turned
        into a validation — so it waits at decode until the value is
        available.  Fresh vector instances do not stall: the vector FU
        reads the scalar register file once, when it is ready (§3.4).

        Callers pre-check ``self._block_scalar_operand`` and membership in
        ``VECTORIZABLE_ALU_OPS`` (dispatch hot path)."""
        mapping = self.engine.vrmt.table.peek(entry.pc)
        if mapping is None or mapping.scalar_value is None:
            return False
        for src in (entry.rs1, entry.rs2):
            if src == NO_REG:
                continue
            ref = self._rename_ref(src)
            if ref[0] == "S" and ref[1] is not None:
                t = ref[1].done_at
                if t is None or t > now:
                    return True
        return False

    def _src_descs(self, entry: TraceEntry) -> List[Tuple]:
        """Source descriptors for the engine's ALU decode (see decode_alu).

        Returns a list (not a tuple): the engine only iterates it, and the
        decode path runs once per arithmetic instruction."""
        rename = self.rename
        descs: List[Tuple] = []
        src = entry.rs1
        if src != NO_REG:
            ref = _READY if src == ZERO_REG else rename.get(src, _READY)
            if ref[0] == "V":
                descs.append(("V", ref[1], ref[2]))
            else:
                descs.append(("S", src, entry.s1))
        src = entry.rs2
        if src == NO_REG:
            # Immediate-operand forms carry the immediate as the final operand.
            if entry.op not in _NO_IMM_OPS:
                descs.append(("imm", entry.imm))
        else:
            ref = _READY if src == ZERO_REG else rename.get(src, _READY)
            if ref[0] == "V":
                descs.append(("V", ref[1], ref[2]))
            else:
                descs.append(("S", src, entry.s2))
        return descs

    def _set_rename(self, fl: InFlight, logical: int, ref: Tuple) -> None:
        if logical == NO_REG or logical == ZERO_REG:
            return
        fl.saved_renames.append((logical, self.rename.get(logical, _READY)))
        self.rename[logical] = ref

    # ==================================================================
    # squash
    # ==================================================================

    def _flush_from(self, from_seq: int, resume_cycle: int, now: int) -> None:
        """Remove every in-flight instruction with seq >= from_seq and
        restart fetch there.  Vector registers survive (§3.5); scalar-side
        bookkeeping (rename, VRMT offsets, U flags) rolls back."""
        engine = self.engine
        while self.rob and self.rob[-1].seq >= from_seq:
            fl = self.rob.pop()
            # A squashed entry may still sit on a surviving producer's
            # waiters list; the flag keeps it from being re-woken.
            fl.squashed = True
            for logical, old in reversed(fl.saved_renames):
                self.rename[logical] = old
            if engine is not None:
                engine.on_flush_entry(fl, now)
        self.lsq = [fl for fl in self.lsq if fl.seq < from_seq]
        self.waiting = [fl for fl in self.waiting if fl.seq < from_seq]
        if self._parked:
            self._parked = [e for e in self._parked if e[1] < from_seq]
            heapify(self._parked)
        self.mem_queue = [fl for fl in self.mem_queue if fl.seq < from_seq]
        self.fetch_queue.clear()
        self.fetch_unit.redirect(from_seq, resume_cycle)

    # ==================================================================
    # main loop
    # ==================================================================

    def step(self, now: int) -> None:
        """Simulate one cycle (commit -> execute/memory -> dispatch -> fetch).

        Stages whose structures are provably idle this cycle are skipped
        outright (an empty ROB cannot commit, an empty waiting list cannot
        issue, ...); each guard reproduces the stage's own first-iteration
        exit condition, so elided and executed cycles are indistinguishable.
        """
        # Inlined ports.begin_cycle() — one call per simulated cycle.
        ports = self.ports
        ports.cycles += 1
        ports._used_this_cycle = 0
        engine = self.engine
        if engine is not None and engine.pending_alu:
            engine.tick(now)
        rob = self.rob
        if rob:
            t = rob[0].done_at
            if t is not None and t <= now:
                self._commit(now)
        if self.waiting or self._parked:
            self._execute(now)
        elif self.mem_queue or (engine is not None and engine.pending_fetches):
            self._schedule_memory(now)
        if self.fetch_queue:
            self._dispatch(now)
        fetch_queue = self.fetch_queue
        room = self._fetch_queue_size - len(fetch_queue)
        if room > 0:
            for fi in self.fetch_unit.fetch_cycle_group(now, room):
                fetch_queue.append(fi)

    def run(self) -> SimStats:
        """Simulate until the whole trace has committed; returns stats."""
        total = len(self.trace.entries)
        stats = self.stats
        if total == 0:
            return stats
        now = 0
        safety = 2000 + 600 * total
        obs = self.observer
        observed = obs is not None and (
            obs.metrics is not None or obs.profiler is not None
        )
        # The loop allocates heavily (InFlight, dep tuples) but creates no
        # reference cycles worth collecting mid-run; pausing the cyclic GC
        # saves its generation-0 scans.  Restore the caller's setting after.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if observed:
                now = self._run_observed(total, safety)
            else:
                step = self.step
                while self.committed_count < total:
                    step(now)
                    now += 1
                    if now > safety:
                        raise RuntimeError(
                            f"simulation wedged: {self.committed_count}/{total} "
                            f"committed after {now} cycles"
                        )
        finally:
            if gc_was_enabled:
                gc.enable()
        stats.cycles = now
        if self.engine is not None:
            self.engine.finalize(now)
        stats.usefulness = self.ports.usefulness_histogram()
        stats.port_occupancy = self.ports.occupancy
        if observed and obs.metrics is not None:
            self._record_metrics(obs.metrics)
        return stats

    def _run_observed(self, total: int, safety: int) -> int:
        """The run loop for metrics-sampling and/or stage-profiled runs.

        Split out of :meth:`run` so unobserved runs keep the bare loop;
        results are bit-identical either way — these hooks only read
        clocks and counters, never machine state.
        """
        obs = self.observer
        profiler = obs.profiler
        metrics = obs.metrics
        series = metrics.series("ports.occupancy") if metrics is not None else None
        ports = self.ports
        n_ports = ports.n_ports
        sample_mask = 0x0FFF  # one occupancy sample every 4096 cycles
        last_busy = 0
        step = self.step if profiler is None else self._step_profiled
        now = 0
        wall_start = observe_profile.perf_counter() if profiler is not None else 0.0
        while self.committed_count < total:
            step(now)
            now += 1
            if series is not None and not (now & sample_mask):
                busy = ports.busy_port_cycles
                series.append(now, (busy - last_busy) / ((sample_mask + 1) * n_ports))
                last_busy = busy
            if now > safety:
                raise RuntimeError(
                    f"simulation wedged: {self.committed_count}/{total} "
                    f"committed after {now} cycles"
                )
        if profiler is not None:
            profiler.wall_seconds += observe_profile.perf_counter() - wall_start
        return now

    def _step_profiled(self, now: int) -> None:
        """:meth:`step` with wall-clock attribution around each stage.

        The stage guards MUST stay in lock-step with :meth:`step` — the
        profiled run stays bit-identical because the hooks only read the
        clock.  Memory scheduling reached from inside the execute scan is
        attributed to ``execute``; only the standalone port-scheduling
        call shows up under ``memory``.
        """
        prof = self.observer.profiler
        clock = observe_profile.perf_counter
        ports = self.ports
        ports.cycles += 1
        ports._used_this_cycle = 0
        engine = self.engine
        if engine is not None and engine.pending_alu:
            t0 = clock()
            engine.tick(now)
            prof.account("execute", clock() - t0, active=False)
        rob = self.rob
        if rob:
            t = rob[0].done_at
            if t is not None and t <= now:
                t0 = clock()
                self._commit(now)
                prof.account("commit", clock() - t0)
        if self.waiting or self._parked:
            t0 = clock()
            self._execute(now)
            prof.account("execute", clock() - t0)
        elif self.mem_queue or (engine is not None and engine.pending_fetches):
            t0 = clock()
            self._schedule_memory(now)
            prof.account("memory", clock() - t0)
        if self.fetch_queue:
            t0 = clock()
            self._dispatch(now)
            prof.account("dispatch", clock() - t0)
        fetch_queue = self.fetch_queue
        room = self._fetch_queue_size - len(fetch_queue)
        if room > 0:
            t0 = clock()
            fetched = self.fetch_unit.fetch_cycle_group(now, room)
            for fi in fetched:
                fetch_queue.append(fi)
            prof.account("fetch", clock() - t0, active=bool(fetched))
        prof.tick()

    def _record_metrics(self, registry) -> None:
        """End-of-run machine-level gauges (cache and port accounting).

        Whole-run ``sim.*`` counters are recorded by the experiment layer
        (:func:`repro.observe.metrics.record_sim_stats`) so sampled-mode
        windows, which each run their own machine against a shared
        observer, do not double-count.  Gauges are safe either way: the
        last window's write wins, and the hierarchy's cumulative stats
        make that the whole-run total.
        """
        self.hierarchy.record_metrics(registry)
        ports = self.ports
        registry.gauge("ports.read_transactions").set(ports.read_transactions)
        registry.gauge("ports.write_transactions").set(ports.write_transactions)
        registry.gauge("ports.busy_port_cycles").set(ports.busy_port_cycles)
        registry.gauge("ports.occupancy.final").set(ports.occupancy)


def simulate(config: MachineConfig, trace: Trace, observer=None) -> SimStats:
    """Run ``trace`` through a machine built from ``config`` (convenience)."""
    return Machine(config, trace, observer=observer).run()
