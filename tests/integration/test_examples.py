"""The example scripts must run end to end and print their reports."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "IPC" in out
    assert "noIM" in out and "V" in out


def test_pointer_chase(capsys):
    out = run_example("pointer_chase_vectorization.py", capsys)
    assert "sequential" in out and "shuffled" in out
    assert "speedup" in out


def test_control_flow_independence(capsys):
    out = run_example("control_flow_independence.py", capsys)
    assert "mispredicts" in out
    assert "reuse" in out


def test_stride_profiler(capsys):
    out = run_example("stride_profiler.py", capsys)
    assert "SpecInt" in out and "SpecFP" in out
    assert "stride" in out
