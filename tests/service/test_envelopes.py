"""The v2 envelope contract: every registered schema round-trips through
``validate_envelope``, the ok/error coupling is enforced, and the
deprecated ``repro.figures/v1`` alias behaves exactly as promised."""

from __future__ import annotations

import pytest

from repro import api
from repro.schemas import (
    DEPRECATED_ALIASES,
    SCHEMA_ERROR,
    SCHEMA_FIGURE_SET,
    SCHEMAS,
    EnvelopeError,
    envelope,
    error_dict,
    error_envelope,
    schema_names,
    validate_envelope,
    wrap_error,
)

#: one minimal *valid* payload per registered schema.  A schema added to
#: the registry without a row here fails test_every_schema_round_trips —
#: the table is the round-trip coverage contract.
MINIMAL = {
    "repro.run/v1": envelope("repro.run/v1", point={}, stats={}, derived={}),
    "repro.grid/v1": envelope("repro.grid/v1", accounting={}, failures=[], runs=[]),
    "repro.campaign/v1": envelope(
        "repro.campaign/v1", campaign={}, resume={}, accounting={}, failures=[]
    ),
    "repro.trace/v1": envelope(
        "repro.trace/v1", run={}, capture={}, crosscheck={}, events=[]
    ),
    "repro.figure/v1": envelope("repro.figure/v1", figure="fig14", rows=[]),
    "repro.figure.set/v1": envelope("repro.figure.set/v1", grid={}, figures={}),
    "repro.headline/v1": envelope(
        "repro.headline/v1", scale=1, sampled=False, claims={}
    ),
    "repro.fuzz/v1": envelope(
        "repro.fuzz/v1", seed=0, oracle={}, programs=0, divergences=[]
    ),
    "repro.fuzz.oracle/v1": envelope(
        "repro.fuzz.oracle/v1", verdict="AGREE", divergences=[], coverage={}
    ),
    "repro.fuzz.repro/v1": envelope(
        "repro.fuzz.repro/v1", program={}, oracle={}, report={}
    ),
    "repro.fuzz.replay/v1": envelope(
        "repro.fuzz.replay/v1", artifact="a.json", matches=True, recorded={}, replayed={}
    ),
    "repro.fuzz.corpus/v1": envelope(
        "repro.fuzz.corpus/v1", root=".", entries=0, coverage_pairs=0
    ),
    "repro.error/v1": error_envelope("kind", "message"),
    "repro.service.job/v1": envelope("repro.service.job/v1", job={}),
    "repro.service.job/v2": envelope(
        "repro.service.job/v2", job={"state": "cancelled"}
    ),
    "repro.service.status/v1": envelope("repro.service.status/v1", service={}),
    "repro.service.metrics/v1": envelope(
        "repro.service.metrics/v1", metrics={}, latency={}
    ),
    "repro.service.event/v1": envelope("repro.service.event/v1", event={}),
}


def test_every_schema_round_trips():
    """The MINIMAL table covers the registry exactly, and every row
    validates as its own canonical, non-deprecated schema."""
    assert set(MINIMAL) == set(schema_names())
    for name, payload in MINIMAL.items():
        info = validate_envelope(payload)
        assert info["schema"] == name
        assert info["deprecated"] is False


def test_ok_error_coupling_enforced():
    good = envelope("repro.run/v1", point={}, stats={}, derived={})
    with pytest.raises(EnvelopeError, match="error is populated"):
        validate_envelope({**good, "error": error_dict("k", "m")})
    with pytest.raises(EnvelopeError, match="error is null"):
        validate_envelope({**good, "ok": False})
    with pytest.raises(EnvelopeError, match="missing 'error'"):
        payload = dict(good)
        del payload["error"]
        validate_envelope(payload)
    with pytest.raises(EnvelopeError, match="missing keys"):
        validate_envelope(envelope("repro.run/v1", point={}))  # stats/derived gone
    # ...but a *failed* envelope owes nothing beyond its error object
    validate_envelope(
        envelope("repro.run/v1", ok=False, error=error_dict("k", "m"))
    )
    with pytest.raises(EnvelopeError, match="unknown schema"):
        validate_envelope(envelope("repro.bogus/v1"))
    with pytest.raises(EnvelopeError, match="ok=false"):
        validate_envelope({"schema": SCHEMA_ERROR, "ok": True, "error": None})


def test_error_object_shape_enforced():
    with pytest.raises(EnvelopeError, match="missing keys"):
        validate_envelope(
            {"schema": SCHEMA_ERROR, "ok": False, "error": {"kind": "k"}}
        )
    with pytest.raises(EnvelopeError, match="retriable"):
        bad = error_dict("k", "m")
        bad["retriable"] = "yes"
        validate_envelope(wrap_error(bad))
    # wrap_error and error_envelope agree on the standalone error shape
    assert wrap_error(error_dict("k", "m")) == error_envelope("k", "m")


def test_job_schema_states_are_versioned():
    """``cancelled`` exists only from v2 on: a v1 payload claiming it is
    malformed, and neither version accepts an invented state."""
    with pytest.raises(EnvelopeError, match="unknown job state"):
        validate_envelope(
            envelope("repro.service.job/v1", job={"state": "cancelled"})
        )
    with pytest.raises(EnvelopeError, match="unknown job state"):
        validate_envelope(
            envelope("repro.service.job/v2", job={"state": "paused"})
        )
    validate_envelope(envelope("repro.service.job/v1", job={"state": "done"}))


def test_figures_alias_accepted_one_release_only():
    """``repro.figures/v1`` (the CLI's historical spelling) validates as a
    *deprecated* alias of ``repro.figure.set/v1`` for exactly one release.

    This test pins both sides of the bargain: the alias is accepted and
    flagged **now**, and the alias table contains nothing else — when the
    row is dropped next release, flip this test to assert
    ``validate_envelope`` raises ``EnvelopeError`` for the old spelling.
    """
    payload = envelope("repro.figures/v1", grid={}, figures={})
    info = validate_envelope(payload)
    assert info["deprecated"] is True
    assert info["schema"] == SCHEMA_FIGURE_SET
    assert info["name"] == "repro.figure.set"
    assert DEPRECATED_ALIASES == {"repro.figures/v1": SCHEMA_FIGURE_SET}
    # the alias is a validator-side accommodation only: it is NOT a
    # registered schema and emitters must not produce it
    assert "repro.figures" not in SCHEMAS
    assert "repro.figures/v1" not in schema_names()


def test_real_api_payloads_validate():
    """Live ``to_dict()`` payloads (not synthetic minima) pass the shared
    validator: a tiny grid, its nested runs, and a trace."""
    report = api.grid(
        [api.GridPoint("compress", 4, 1, "V", 2_610, True, None)]
    )
    grid_payload = report.to_dict()
    assert validate_envelope(grid_payload)["name"] == "repro.grid"
    assert grid_payload["ok"] is True
    for run in grid_payload["runs"]:
        assert validate_envelope(run)["name"] == "repro.run"

    trace_payload = api.trace("compress", mode="V", scale=2_110).to_dict()
    assert validate_envelope(trace_payload)["name"] == "repro.trace"
