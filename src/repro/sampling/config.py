"""Sampling parameters: window length, inter-window interval, checkpoints.

Defaults follow the SMARTS recipe scaled to this model: detailed windows
of ~1.5k instructions every 15k (10% detailed coverage) keep IPC within a
few percent of exact on the paper's workloads while the other 90% of the
trace streams through the functional warmer at roughly 10-20x the
detailed model's speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: detailed-window length, in dynamic instructions.
DEFAULT_WINDOW = 1_500

#: distance between window *starts*, in dynamic instructions.
DEFAULT_INTERVAL = 15_000


@dataclass(frozen=True)
class SamplingConfig:
    """Parameters of one sampled run (hashable; part of cache keys)."""

    #: instructions simulated in detail per window.
    window: int = DEFAULT_WINDOW
    #: instructions between consecutive window starts (window + warmed gap).
    interval: int = DEFAULT_INTERVAL
    #: persist/restore warmed state via the disk cache's checkpoint section.
    use_checkpoints: bool = True

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.interval < self.window:
            raise ValueError(
                f"interval ({self.interval}) must be >= window ({self.window})"
            )

    def fingerprint(self) -> Dict[str, int]:
        """JSON-safe rendering for cache keys.

        ``use_checkpoints`` is deliberately excluded: it changes where
        state comes from, never what the state (or the result) is.
        """
        return {"window": self.window, "interval": self.interval}

    @property
    def key(self) -> Tuple[int, int]:
        """The fingerprint as a hashable tuple (for in-process memo keys)."""
        return (self.window, self.interval)

    @property
    def detail_fraction(self) -> float:
        """Fraction of the trace simulated in detail (upper bound)."""
        return self.window / self.interval
