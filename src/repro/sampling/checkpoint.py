"""Warm-state checkpoints: snapshot/restore a :class:`WarmState`.

A checkpoint captures everything :func:`~repro.sampling.warmer.warm_to`
evolves — cache contents, predictor tables, architectural memory — as a
JSON-serializable payload, which the disk cache's ``checkpoints/``
section persists compressed (see
:func:`repro.experiments.diskcache.store_checkpoint`).  A second sampled
run of the same point restores each window's state instead of
re-streaming the warmer; with every boundary checkpointed the run does
zero warming work (``SimStats.warmed_entries == 0``).
"""

from __future__ import annotations

from typing import Dict

from ..functional.memory import MemoryImage
from ..functional.trace import Trace
from ..pipeline.config import MachineConfig
from .vectorwarm import VectorWarm
from .warmer import WarmState


def snapshot_state(state: WarmState) -> Dict:
    """Serialize ``state`` into a JSON-safe checkpoint payload."""
    return {
        "position": state.position,
        "hierarchy": state.hierarchy.snapshot(),
        "gshare": state.gshare.snapshot(),
        "indirect": state.indirect.snapshot(),
        "memory": {str(addr): value for addr, value in state.memory.items()},
        # V configurations: the carried engine's full object graph.
        "vector": state.vec.snapshot() if state.vec is not None else None,
    }


def restore_state(config: MachineConfig, trace: Trace, payload: Dict) -> WarmState:
    """Rebuild a :class:`WarmState` from a checkpoint payload.

    Raises ``ValueError``/``KeyError``/``IndexError`` when the payload
    does not match this configuration's geometry (callers treat that as a
    cache miss).
    """
    state = WarmState.cold(config, trace)
    state.hierarchy.restore(payload["hierarchy"])
    state.gshare.restore(payload["gshare"])
    state.indirect.restore(payload["indirect"])
    state.memory = MemoryImage(
        {int(addr): value for addr, value in payload["memory"].items()}
    )
    vector = payload.get("vector")
    if (vector is None) != (state.vec is None):
        raise ValueError("checkpoint vector section does not match config.vectorize")
    if vector is not None:
        state.vec = VectorWarm.restore(config, vector)
    state.position = payload["position"]
    return state
