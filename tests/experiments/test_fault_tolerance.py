"""The fault-tolerant grid fabric, driven by the deterministic injector.

One bad grid point must never cost the rest of the grid.  These tests
script every failure class through :mod:`repro.verify.faults` —
transient exceptions (retried), persistent exceptions (quarantined),
worker crashes (pool salvage + isolation) and hangs (stall timeout) —
and assert both halves of the contract: the healthy points' results
stay bit-identical to a fault-free run, and the failures are reported
precisely (kind, attempts, exact point).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments import runner
from repro.experiments.parallel import GridPoint, GridReport, run_grid
from repro.observe import MetricsRegistry
from repro.verify import faults

SCALE = 1_500

POINTS = [
    GridPoint("li", 4, 1, "V", SCALE),
    GridPoint("li", 4, 1, "noIM", SCALE),
    GridPoint("compress", 4, 1, "V", SCALE),
    GridPoint("compress", 4, 1, "noIM", SCALE),
]
CRASHER = POINTS[0]
HEALTHY = POINTS[1:]


@pytest.fixture
def fresh_state(tmp_path, monkeypatch):
    """Cold memo, private enabled disk cache, nothing armed."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
    runner.clear_memo()
    faults.clear()
    yield tmp_path
    faults.clear()
    runner.clear_memo()


def _fingerprints(results):
    return {p: dataclasses.asdict(s) for p, s in results.items()}


def _reference(tmp_path, monkeypatch):
    """Fault-free serial fingerprints, computed in a throwaway cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "reference-cache"))
    reference = _fingerprints(run_grid(POINTS, jobs=1))
    runner.clear_memo()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return reference


def test_transient_failure_is_retried_to_success(fresh_state):
    faults.install([
        {
            "site": "grid.point",
            "action": "raise",
            "match": {"benchmark": "li", "mode": "V"},
            "times": 2,
        }
    ])
    report = GridReport()
    results = run_grid(POINTS, jobs=1, report=report, max_retries=3)
    assert report.ok
    assert set(results) == set(POINTS)
    assert report.retries == 2
    assert report.simulated == len(POINTS)


def test_poisoned_point_is_quarantined_and_the_rest_complete(fresh_state, monkeypatch):
    reference = _reference(fresh_state, monkeypatch)
    faults.install([
        {
            "site": "grid.point",
            "action": "raise",
            "match": {"benchmark": "li", "mode": "V"},
            "message": "poisoned",
        }
    ])
    report = GridReport()
    registry = MetricsRegistry()
    results = run_grid(POINTS, jobs=1, report=report, metrics=registry, max_retries=1)

    assert not report.ok
    assert set(results) == set(HEALTHY)
    assert _fingerprints(results) == {p: reference[p] for p in HEALTHY}

    (failure,) = report.failed
    assert failure.point == CRASHER
    assert failure.kind == "error"
    assert failure.attempts == 2  # first try + one retry
    assert "poisoned" in failure.error
    assert "FAILED" in report.summary()

    assert registry.get("grid.task_retries").value == 1
    assert registry.get("grid.tasks_failed").value == 1


def test_clean_run_materializes_no_fabric_metrics(fresh_state):
    registry = MetricsRegistry()
    run_grid(POINTS[:2], jobs=1, metrics=registry)
    # The fabric counters must not exist on a clean run, so observed
    # registries stay bit-identical with the fault layer present.
    assert registry.get("grid.task_retries") is None
    assert registry.get("grid.tasks_failed") is None
    assert registry.get("grid.pool_restarts") is None


def test_worker_crash_salvages_the_grid_and_indicts_the_point(fresh_state, monkeypatch):
    reference = _reference(fresh_state, monkeypatch)
    # The env form is what reaches pool workers (inherited environment).
    monkeypatch.setenv(
        "REPRO_FAULTS",
        json.dumps([
            {
                "site": "grid.point",
                "action": "crash",
                "match": {"benchmark": "li", "mode": "V"},
            }
        ]),
    )
    report = GridReport()
    results = run_grid(POINTS, jobs=2, report=report, max_retries=1)

    # Every healthy point was salvaged, bit-identical to the fault-free run.
    assert set(results) == set(HEALTHY)
    assert _fingerprints(results) == {p: reference[p] for p in HEALTHY}

    # Exactly the crashing point is quarantined, with its retry count.
    (failure,) = report.failed
    assert failure.point == CRASHER
    assert failure.kind == "crash"
    assert failure.attempts == 2
    assert report.pool_restarts >= 1


def test_hung_task_times_out_and_the_rest_complete(fresh_state, monkeypatch):
    monkeypatch.setenv(
        "REPRO_FAULTS",
        json.dumps([
            {
                "site": "grid.point",
                "action": "hang",
                "delay": 120.0,
                "match": {"benchmark": "li", "mode": "V"},
            }
        ]),
    )
    report = GridReport()
    results = run_grid(POINTS, jobs=2, report=report, task_timeout=5.0, max_retries=0)

    assert set(results) == set(HEALTHY)
    (failure,) = report.failed
    assert failure.point == CRASHER
    assert failure.kind == "timeout"
    assert failure.attempts == 1
    assert "5" in failure.error


@pytest.mark.slow
def test_sixty_point_grid_survives_a_crash_and_a_poisoned_point(
    fresh_state, monkeypatch
):
    # The acceptance grid: 12 benchmarks x 5 machine configurations.
    # One point kills its worker, another fails deterministically; every
    # healthy point must come back bit-identical to a fault-free run and
    # exactly the two bad points must be reported, with retry counts.
    from repro.workloads import ALL_BENCHMARKS

    configs = [(4, 1, "noIM"), (4, 1, "IM"), (4, 1, "V"), (8, 1, "V"), (4, 2, "V")]
    grid = [
        GridPoint(name, width, ports, mode, SCALE)
        for name in ALL_BENCHMARKS
        for width, ports, mode in configs
    ]
    assert len(grid) == 60
    crasher = GridPoint("li", 4, 1, "V", SCALE)
    poisoned = GridPoint("swim", 8, 1, "V", SCALE)

    monkeypatch.setenv("REPRO_CACHE_DIR", str(fresh_state / "reference-cache"))
    reference = _fingerprints(run_grid(grid, jobs=4))
    runner.clear_memo()
    monkeypatch.setenv("REPRO_CACHE_DIR", str(fresh_state / "cache"))

    monkeypatch.setenv(
        "REPRO_FAULTS",
        json.dumps([
            {
                "site": "grid.point",
                "action": "crash",
                "match": {"benchmark": "li", "width": 4, "ports": 1, "mode": "V"},
            },
            {
                "site": "grid.point",
                "action": "raise",
                "match": {"benchmark": "swim", "width": 8, "mode": "V"},
                "message": "poisoned",
            },
        ]),
    )
    report = GridReport()
    results = run_grid(grid, jobs=4, report=report, max_retries=1)

    healthy = [p for p in grid if p not in (crasher, poisoned)]
    assert set(results) == set(healthy)
    assert _fingerprints(results) == {p: reference[p] for p in healthy}

    assert len(report.failed) == 2
    by_point = {failure.point: failure for failure in report.failed}
    assert by_point[crasher].kind == "crash"
    assert by_point[crasher].attempts == 2
    assert by_point[poisoned].kind == "error"
    assert by_point[poisoned].attempts == 2
    assert "poisoned" in by_point[poisoned].error
    assert report.pool_restarts >= 1
    assert not report.ok


def test_failed_points_still_heal_on_the_next_run(fresh_state):
    # A quarantined point is absent from the results but not poisoned
    # forever: the next run (fault gone) computes it normally.
    with faults.injected([
        {"site": "grid.point", "action": "raise", "match": {"benchmark": "li"}}
    ]):
        report = GridReport()
        run_grid(POINTS, jobs=1, report=report, max_retries=0)
        assert len(report.failed) == 2  # both li points
    healed = GridReport()
    results = run_grid(POINTS, jobs=1, report=healed)
    assert healed.ok
    assert set(results) == set(POINTS)
