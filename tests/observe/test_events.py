"""Unit tests for the trace bus: ordering, overflow, filtering, export."""

from __future__ import annotations

import io
import json

import pytest

from repro.observe.events import (
    EVENT_GROUPS,
    EVENT_KINDS,
    SQUASH_COHERENCE,
    TL_DEMOTE,
    TL_PROMOTE,
    TraceBus,
    TraceEvent,
    VALIDATE_FAIL,
    VALIDATE_PASS,
    VRMT_INVALIDATE,
    VRMT_MAP,
    resolve_event_kinds,
)


def test_events_come_back_in_emission_order():
    bus = TraceBus()
    bus.emit(5, TL_PROMOTE, pc=4)
    bus.emit(5, VRMT_MAP, pc=4)
    bus.emit(9, VALIDATE_PASS, pc=4)
    got = [(e.cycle, e.kind) for e in bus.drain()]
    assert got == [(5, TL_PROMOTE), (5, VRMT_MAP), (9, VALIDATE_PASS)]
    assert bus.drain() == []  # drain empties the ring
    assert bus.emitted == 3  # ...but not the accounting


def test_ring_overflow_drops_oldest_keeps_counts():
    bus = TraceBus(capacity=4)
    for cycle in range(10):
        bus.emit(cycle, TL_PROMOTE, pc=cycle)
    assert bus.emitted == 10
    assert bus.dropped == 6
    assert [e.cycle for e in bus.events] == [6, 7, 8, 9]  # newest survive
    # Per-kind totals are overflow-proof: the cross-check against
    # SimStats counters must survive a saturated ring.
    assert bus.count(TL_PROMOTE) == 10


def test_kind_filter_skips_capture_and_counting():
    bus = TraceBus(kinds=frozenset((VALIDATE_FAIL,)))
    assert bus.wants(VALIDATE_FAIL) and not bus.wants(VALIDATE_PASS)
    bus.emit(1, VALIDATE_PASS, pc=2)
    bus.emit(2, VALIDATE_FAIL, pc=2)
    assert bus.emitted == 1
    assert bus.count(VALIDATE_PASS) == 0
    assert [e.kind for e in bus.events] == [VALIDATE_FAIL]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TraceBus(capacity=0)


def test_event_to_dict_omits_absent_pc_and_seq():
    assert TraceEvent(7, SQUASH_COHERENCE).to_dict() == {
        "cycle": 7,
        "kind": SQUASH_COHERENCE,
    }
    full = TraceEvent(7, VALIDATE_FAIL, pc=12, seq=99, data={"reason": "x"})
    assert full.to_dict() == {
        "cycle": 7,
        "kind": VALIDATE_FAIL,
        "pc": 12,
        "seq": 99,
        "reason": "x",
    }


def test_jsonl_export_round_trips():
    bus = TraceBus()
    bus.emit(3, VRMT_INVALIDATE, pc=8, reason="operands")
    stream = io.StringIO()
    assert bus.export_jsonl(stream) == 1
    (line,) = stream.getvalue().splitlines()
    assert json.loads(line) == {
        "cycle": 3,
        "kind": VRMT_INVALIDATE,
        "pc": 8,
        "reason": "operands",
    }


def test_summary_reports_accounting():
    bus = TraceBus(capacity=2)
    for cycle in range(3):
        bus.emit(cycle, TL_DEMOTE)
    summary = bus.summary()
    assert summary["emitted"] == 3
    assert summary["captured"] == 2
    assert summary["dropped"] == 1
    assert summary["counts"] == {TL_DEMOTE: 3}


# -- filter resolution -------------------------------------------------------


def test_resolve_accepts_exact_kinds_groups_and_prefixes():
    assert resolve_event_kinds(None) is None
    assert resolve_event_kinds(["validate.fail"]) == frozenset((VALIDATE_FAIL,))
    assert resolve_event_kinds(["validation"]) == frozenset(
        (VALIDATE_PASS, VALIDATE_FAIL)
    )
    assert resolve_event_kinds(["vrmt"]) == frozenset((VRMT_MAP, VRMT_INVALIDATE))
    combined = resolve_event_kinds(["tl", "squash.coherence"])
    assert combined == frozenset((TL_PROMOTE, TL_DEMOTE, SQUASH_COHERENCE))


def test_resolve_rejects_unknown_tokens():
    with pytest.raises(ValueError, match="unknown event filter"):
        resolve_event_kinds(["bogus"])


def test_groups_cover_the_taxonomy():
    covered = {kind for kinds in EVENT_GROUPS.values() for kind in kinds}
    assert covered == EVENT_KINDS
