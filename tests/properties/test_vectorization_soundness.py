"""Randomized soundness: the mechanism must never corrupt architecture.

Hypothesis generates random loop programs — strided and stride-breaking
loads, dependent arithmetic chains, read-modify-write stores that land
inside vector ranges, data-dependent branches — and replays each one
through the V-mode machine with ``check_invariants=True``.  If stride
prediction, operand matching, store coherence or squash rollback ever let
a wrong value commit, the engine raises
:class:`~repro.core.engine.MisspeculationError` and the test fails.

This is the repository's strongest guarantee: the paper's correctness
argument (§3) holds on arbitrary programs, not just the curated suite.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.functional import run_program
from repro.pipeline import make_config
from repro.pipeline.machine import Machine
from repro.workloads.builder import ProgramBuilder

INT_OPS = ("add", "sub", "and_", "or_", "xor", "mul", "slt")


@st.composite
def loop_programs(draw):
    """A random program: 1-3 loops of loads, ALU chains, stores, branches."""
    b = ProgramBuilder()
    arrays = []
    for _ in range(draw(st.integers(1, 3))):
        length = draw(st.integers(4, 20))
        init = [draw(st.integers(-50, 50)) for _ in range(length)]
        arrays.append((b.array(length, init, align=4), length))
    slot = b.array(1)

    ptr, val, acc, tmp = b.ireg(), b.ireg(), b.ireg(), b.ireg()
    for _ in range(draw(st.integers(1, 3))):
        base, length = draw(st.sampled_from(arrays))
        stride = draw(st.sampled_from((0, 8, 8, 16, 24)))
        iters = draw(st.integers(3, 18))
        store_kind = draw(st.sampled_from(("none", "slot", "rmw", "ahead")))
        branchy = draw(st.booleans())
        n_ops = draw(st.integers(1, 4))
        ops = [draw(st.sampled_from(INT_OPS)) for _ in range(n_ops)]

        b.li(ptr, base)
        b.li(acc, draw(st.integers(-5, 5)))
        with b.loop(iters):
            b.ld(val, 0, ptr)
            for name in ops:
                getattr(b, name)(acc, acc, val)
            if branchy:
                with b.if_nonzero(val):
                    b.addi(acc, acc, 1)
            if store_kind == "slot":
                b.st(acc, slot, 0)  # fixed out-of-range slot via r0 base
            elif store_kind == "rmw":
                b.st(acc, 0, ptr)  # overwrite the word just loaded
            elif store_kind == "ahead":
                b.st(acc, 8, ptr)  # clobber the next (speculative) element
            if stride:
                b.addi(ptr, ptr, stride)
    b.st(acc, 0, 0)  # final architectural result at address 0
    b.release(ptr, val, acc, tmp)
    b.halt()
    return b.build()


common = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(loop_programs())
@common
def test_v_mode_commits_everything_soundly(program):
    trace = run_program(program, max_instructions=3000)
    config = make_config(4, 1, "V")
    assert config.check_invariants
    stats = Machine(config, trace).run()
    # Every retired instruction commits exactly once; any mis-validated
    # value would have raised MisspeculationError inside the run.
    assert stats.committed == len(trace.entries)
    assert stats.validations_committed <= stats.committed


@given(loop_programs())
@common
def test_all_modes_complete(program):
    trace = run_program(program, max_instructions=2000)
    for mode in ("noIM", "IM", "V"):
        stats = Machine(make_config(4, 1, mode), trace).run()
        assert stats.committed == len(trace.entries)


@given(loop_programs())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_v_mode_is_deterministic(program):
    trace = run_program(program, max_instructions=1500)
    a = Machine(make_config(4, 1, "V"), trace).run()
    b = Machine(make_config(4, 1, "V"), trace).run()
    assert a.cycles == b.cycles
    assert a.validations_committed == b.validations_committed
    assert a.read_accesses == b.read_accesses


@given(loop_programs(), st.sampled_from([(4, 2), (8, 1), (8, 4)]))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_soundness_across_machine_shapes(program, shape):
    width, ports = shape
    trace = run_program(program, max_instructions=1500)
    stats = Machine(make_config(width, ports, "V"), trace).run()
    assert stats.committed == len(trace.entries)


@given(loop_programs(), st.integers(1, 3))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_soundness_with_throttled_fetching(program, fetch_ahead):
    """The future-work throttle changes timing, never architecture."""
    trace = run_program(program, max_instructions=1500)
    config = make_config(4, 1, "V")
    config.vector.fetch_ahead = fetch_ahead
    config.vector.cancel_dead_fetches = True
    stats = Machine(config, trace).run()
    assert stats.committed == len(trace.entries)


@given(loop_programs())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_soundness_without_tl_damping(program):
    """The paper's literal TL rule squashes more but stays correct."""
    trace = run_program(program, max_instructions=1500)
    config = make_config(4, 1, "V")
    config.vector.tl_damping = False
    stats = Machine(config, trace).run()
    assert stats.committed == len(trace.entries)


@given(loop_programs())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_soundness_under_tiny_vector_resources(program):
    """Starved tables/pools change performance, never correctness."""
    trace = run_program(program, max_instructions=1500)
    config = make_config(4, 1, "V")
    config.vector.num_registers = 3
    config.vector.vrmt_sets = 2
    config.vector.vrmt_ways = 1
    config.vector.tl_sets = 4
    config.vector.tl_ways = 1
    stats = Machine(config, trace).run()
    assert stats.committed == len(trace.entries)
