"""Table of Loads: stride detection, confidence, damping."""

from repro.core import TableOfLoads


def observe_n(tl, pc, base, stride, count):
    results = []
    for i in range(count):
        results.append(tl.observe(pc, base + i * stride))
    return results


def test_first_sighting_not_vectorizable():
    tl = TableOfLoads()
    stride, ok = tl.observe(100, 0x1000)
    assert stride is None and not ok


def test_fires_on_third_consistent_instance():
    """The paper (§2): 'at least three dynamic instances are needed'."""
    tl = TableOfLoads()
    results = observe_n(tl, 100, 0x1000, 8, 4)
    # instance 1: no stride; 2: stride learned, conf 0; 3: conf 1;
    # 4: conf 2 -> vectorizable.
    assert [ok for _, ok in results] == [False, False, False, True]
    assert results[-1][0] == 8


def test_stride_zero_detects():
    tl = TableOfLoads()
    results = observe_n(tl, 7, 0x2000, 0, 5)
    assert results[-1] == (0, True)


def test_stride_change_resets_confidence():
    tl = TableOfLoads()
    observe_n(tl, 1, 0, 8, 4)
    stride, ok = tl.observe(1, 1000)  # break the stride
    assert not ok
    # Needs to re-earn confidence at the new stride.
    assert tl.observe(1, 1008) == (8, False)
    assert tl.observe(1, 1016) == (8, False)
    assert tl.observe(1, 1024) == (8, True)


def test_independent_pcs():
    tl = TableOfLoads()
    observe_n(tl, 1, 0, 8, 4)
    assert tl.observe(2, 500) == (None, False)  # fresh pc unaffected
    assert tl.stride_of(1) == 8


def test_punish_raises_the_bar():
    tl = TableOfLoads()
    observe_n(tl, 1, 0, 8, 4)
    tl.punish(1)
    # After one failure the threshold doubles: 3 repeats are no longer
    # enough.
    results = observe_n(tl, 1, 1000, 8, 4)
    assert not any(ok for _, ok in results)
    # ... but persistence eventually re-qualifies.
    results = observe_n(tl, 1, 2000, 8, 6)
    assert results[-1][1]


def test_reward_relaxes_damping():
    tl = TableOfLoads()
    observe_n(tl, 1, 0, 8, 4)
    tl.punish(1)
    tl.reward(1)
    results = observe_n(tl, 1, 1000, 8, 4)
    assert results[-1][1]  # back to the base threshold


def test_punish_saturates():
    tl = TableOfLoads()
    observe_n(tl, 1, 0, 8, 4)
    for _ in range(20):
        tl.punish(1)
    entry = tl.table.peek(1)
    assert entry.failures <= 4
    # Still recoverable within a bounded number of instances.
    results = observe_n(tl, 1, 0, 8, 64)
    assert results[-1][1]


def test_eviction_forgets():
    tl = TableOfLoads(ways=1, sets=1)
    observe_n(tl, 1, 0, 8, 4)
    tl.observe(2, 0)  # evicts pc 1
    assert tl.observe(1, 8) == (None, False)  # starts from scratch


def test_storage_bytes_matches_paper():
    """§4.1: the TL requires 49152 bytes (4 ways x 512 sets x 24 bytes)."""
    assert TableOfLoads().storage_bytes == 49152
