"""L1 data-cache ports: scalar buses or the 4-word wide bus.

The paper evaluates three memory organisations per port count *x*:

* ``xpnoIM`` — *x* scalar buses: every port transaction moves one word.
* ``xpIM``  — *x* wide buses: one transaction moves a whole 4-word line,
  and every pending load to that line (up to 4) is served by the single
  access (§3.7).
* ``xpV``   — wide buses plus dynamic vectorization; vector element
  fetches ride the same wide transactions.

This module owns two pieces of bookkeeping the experiments need:

* **occupancy** (Fig 12): fraction of port-cycles actually used;
* **usefulness** (Fig 13): for every *read* transaction on a wide bus, how
  many of the line's words were ultimately useful — served a scalar load,
  or a vector element that was later validated.  Vector elements are
  speculative at access time, so their words start in a ``speculative``
  bucket and migrate to ``useful`` when the element validates; a
  transaction whose words are all dead at the end of the run counts as an
  *unused (speculative) access*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


#: Words per cache line / wide-bus transfer (32-byte lines of 8-byte words).
WORDS_PER_LINE = 4


@dataclass(slots=True)
class ReadTransaction:
    """Usefulness accounting for one read access of a line."""

    useful_words: int = 0
    speculative_words: int = 0

    def cap(self) -> None:
        total = self.useful_words + self.speculative_words
        if total > WORDS_PER_LINE:
            # More loads than words can only mean duplicates to the same
            # word; clamp to the physical line size.
            overflow = total - WORDS_PER_LINE
            take = min(overflow, self.speculative_words)
            self.speculative_words -= take
            overflow -= take
            self.useful_words -= overflow


class DataPorts:
    """Per-cycle port arbitration plus occupancy/usefulness statistics."""

    def __init__(self, n_ports: int, wide: bool) -> None:
        if n_ports < 1:
            raise ValueError("need at least one port")
        self.n_ports = n_ports
        self.wide = wide
        self._used_this_cycle = 0
        self.busy_port_cycles = 0
        self.cycles = 0
        self.read_transactions = 0
        self.write_transactions = 0
        self._txns: List[ReadTransaction] = []

    # -- per-cycle arbitration ------------------------------------------------

    def begin_cycle(self) -> None:
        """Advance to a new cycle; all ports become free."""
        self.cycles += 1
        self._used_this_cycle = 0

    def available(self) -> int:
        """Ports still free this cycle."""
        return self.n_ports - self._used_this_cycle

    def take(self) -> None:
        """Consume one port for this cycle (a transaction begins)."""
        if self._used_this_cycle >= self.n_ports:
            raise RuntimeError("port over-subscription")
        self._used_this_cycle += 1
        self.busy_port_cycles += 1

    # -- usefulness accounting ---------------------------------------------------

    def open_read(self) -> int:
        """Start a read transaction; returns its id for later attribution."""
        self.read_transactions += 1
        self._txns.append(ReadTransaction())
        return len(self._txns) - 1

    def open_write(self) -> None:
        """Record a write (store-commit) transaction; writes carry no
        usefulness accounting — Fig 13 is about read lines only."""
        self.write_transactions += 1

    def add_useful(self, txn: int, words: int = 1) -> None:
        """Words of the transaction consumed by committed-path scalar loads."""
        t = self._txns[txn]
        t.useful_words += words
        t.cap()

    def add_speculative(self, txn: int, words: int = 1) -> None:
        """Words fetched for vector elements, pending validation."""
        t = self._txns[txn]
        t.speculative_words += words
        t.cap()

    def element_validated(self, txn: int) -> None:
        """A vector element fetched by ``txn`` was validated: its word
        becomes useful."""
        t = self._txns[txn]
        if t.speculative_words > 0:
            t.speculative_words -= 1
            t.useful_words = min(WORDS_PER_LINE, t.useful_words + 1)

    # -- reporting ---------------------------------------------------------------

    @property
    def occupancy(self) -> float:
        """Busy port-cycles over total port-cycles (Fig 12's metric)."""
        total = self.n_ports * self.cycles
        return self.busy_port_cycles / total if total else 0.0

    def usefulness_histogram(self) -> Dict[str, float]:
        """Fractions of read transactions by useful-word count (Fig 13).

        Returns keys ``"1".."4"`` (lines contributing that many useful
        words) and ``"unused"`` (reads whose words were all speculative
        and never validated).  Fractions sum to 1 over read transactions.
        """
        counts = {"1": 0, "2": 0, "3": 0, "4": 0, "unused": 0}
        for t in self._txns:
            if t.useful_words == 0:
                counts["unused"] += 1
            else:
                counts[str(min(WORDS_PER_LINE, t.useful_words))] += 1
        total = len(self._txns)
        if not total:
            return {k: 0.0 for k in counts}
        return {k: v / total for k, v in counts.items()}
