"""The paper's headline scalar claims (abstract, §1, §4.3, §6).

* a 4-way with one wide port + dynamic vectorization is ~19% faster than a
  4-way with 4 scalar ports, and ~3% faster than an 8-way with 4 scalar
  ports;
* memory requests drop 15% (SpecInt) / 20% (SpecFP);
* V adds +21.2% (SpecInt) / +8.1% (SpecFP) IPC over one wide bus alone;
* 28% / 23% of instructions become validations.

The bench prints paper-vs-measured side by side; EXPERIMENTS.md records a
full-scale snapshot.
"""

import pathlib

from repro.analysis import format_table
from repro.experiments import headline_claims

from conftest import RESULTS_DIR, SCALE

PAPER = {
    "speedup_1pV_vs_4pnoIM": 0.19,
    "speedup_1pV_vs_8way_4pnoIM": 0.03,
    "int_ipc_gain_over_IM": 0.212,
    "fp_ipc_gain_over_IM": 0.081,
    "int_mem_reduction": 0.15,
    "fp_mem_reduction": 0.20,
    "int_validation_fraction": 0.28,
    "fp_validation_fraction": 0.23,
}


def test_headline_claims(benchmark):
    measured = benchmark.pedantic(headline_claims, args=(SCALE,), rounds=1, iterations=1)
    rows = [
        [key, f"{PAPER[key]:+.1%}", f"{value:+.1%}",
         "same sign" if (value > 0) == (PAPER[key] > 0) else "SIGN FLIP"]
        for key, value in measured.items()
    ]
    table = format_table(["claim", "paper", "measured", "shape"], rows)
    text = f"Headline claims (scale={SCALE})\n{table}\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "headline.txt").write_text(text)
    print("\n" + text)
    # The reproduction must preserve the *direction* of every claim except
    # the 4-way-1pV vs 8-way-4pnoIM comparison: our 8-way baseline is
    # relatively stronger than the paper's (trace-driven wrong paths cost
    # wide machines less), so that razor-thin +3% flips sign here.  It is
    # recorded in EXPERIMENTS.md as a known deviation.
    for key, value in measured.items():
        if key == "speedup_1pV_vs_8way_4pnoIM":
            continue
        assert (value > 0) == (PAPER[key] > 0), key
