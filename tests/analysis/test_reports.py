"""Report formatting helpers."""

import pytest

from repro.analysis import format_table, mean, percent, suite_rows


def test_format_table_alignment():
    table = format_table(["name", "v"], [["a", 1.5], ["long", 22]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)
    assert "1.500" in table


def test_percent():
    assert percent(0.125) == "12.5%"


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert mean([]) == 0.0


def test_suite_rows_appends_averages():
    data = {
        "a": {"x": 1.0, "y": 2.0},
        "b": {"x": 3.0, "y": 4.0},
        "c": {"x": 5.0, "y": 6.0},
    }
    rows = suite_rows(data, int_names=["a", "b"], fp_names=["c"])
    labels = [row[0] for row in rows]
    assert labels == ["a", "b", "c", "INT", "FP", "TOTAL"]
    int_row = rows[3]
    assert int_row[1] == pytest.approx(2.0)  # mean of x over a, b
    total_row = rows[5]
    assert total_row[2] == pytest.approx(4.0)  # mean of y over all


def test_suite_rows_empty():
    assert suite_rows({}, [], []) == []


def test_suite_rows_missing_benchmarks_skipped():
    data = {"a": {"x": 2.0}}
    rows = suite_rows(data, int_names=["a", "zzz"], fp_names=["www"])
    assert rows[1][0] == "INT"
    assert rows[1][1] == pytest.approx(2.0)
