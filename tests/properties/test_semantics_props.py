"""Property-based tests of the shared operation semantics."""

from hypothesis import given, strategies as st

from repro.functional.semantics import apply_alu, branch_taken, s64
from repro.isa.opcodes import (
    BRANCH_OPS,
    FP_R_OPS,
    FP_RR_OPS,
    INT_RI_OPS,
    INT_RR_OPS,
    Opcode,
)

S64_MIN = -(1 << 63)
S64_MAX = (1 << 63) - 1

ints = st.integers(min_value=S64_MIN * 4, max_value=S64_MAX * 4)
in_range = st.integers(min_value=S64_MIN, max_value=S64_MAX)
floats = st.floats(allow_nan=False, allow_infinity=False, width=64)

int_ops = st.sampled_from(sorted(INT_RR_OPS | INT_RI_OPS, key=int))
fp2_ops = st.sampled_from(sorted(FP_RR_OPS, key=int))
fp1_ops = st.sampled_from(sorted(FP_R_OPS, key=int))
branch_ops = st.sampled_from(sorted(BRANCH_OPS, key=int))


@given(ints)
def test_s64_is_idempotent(value):
    assert s64(s64(value)) == s64(value)


@given(ints)
def test_s64_stays_in_range(value):
    assert S64_MIN <= s64(value) <= S64_MAX


@given(in_range, in_range)
def test_s64_add_is_modular(a, b):
    assert s64(a + b) == s64(s64(a) + s64(b))


@given(int_ops, ints, ints)
def test_int_alu_total_and_in_range(op, a, b):
    result = apply_alu(op, a, b)
    assert isinstance(result, int)
    assert S64_MIN <= result <= S64_MAX


@given(int_ops, ints, ints)
def test_int_alu_deterministic(op, a, b):
    assert apply_alu(op, a, b) == apply_alu(op, a, b)


@given(in_range, in_range.filter(lambda b: b != 0))
def test_division_identity(a, b):
    q = apply_alu(Opcode.DIV, a, b)
    r = apply_alu(Opcode.REM, a, b)
    assert s64(q * b + r) == s64(a)
    assert abs(r) < abs(b)


@given(fp2_ops, floats, floats)
def test_fp_alu_total(op, a, b):
    result = apply_alu(op, a, b)
    assert isinstance(result, float)
    assert result == result  # never NaN from finite inputs


@given(fp1_ops, floats)
def test_fp_unary_total(op, a):
    result = apply_alu(op, a, 0)
    assert isinstance(result, float)


@given(floats)
def test_fsqrt_nonnegative(a):
    assert apply_alu(Opcode.FSQRT, a, 0) >= 0.0


@given(branch_ops, in_range, in_range)
def test_branch_conditions_boolean_and_consistent(op, a, b):
    taken = branch_taken(op, a, b)
    assert isinstance(taken, bool)
    # BEQ/BNE and BLT/BGE are complementary pairs.
    if op is Opcode.BEQ:
        assert taken != branch_taken(Opcode.BNE, a, b)
    if op is Opcode.BLT:
        assert taken != branch_taken(Opcode.BGE, a, b)


@given(in_range, in_range)
def test_slt_matches_python_comparison(a, b):
    assert apply_alu(Opcode.SLT, a, b) == (1 if a < b else 0)


@given(in_range)
def test_shift_by_multiple_of_64_is_identity_for_sll(a):
    assert apply_alu(Opcode.SLL, a, 64) == s64(a)
    assert apply_alu(Opcode.SLL, a, 128) == s64(a)
