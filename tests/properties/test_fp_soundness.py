"""Randomized soundness over floating-point programs.

The integer generator in ``test_vectorization_soundness`` cannot catch
bugs in the fp vector datapath (different FU pools, different value
domain, fp-specific semantics like the total FSQRT); this generator
drives fp streams, in-place updates and mixed int/fp address arithmetic
through the V-mode machine with the commit-time value assertion armed.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.functional import run_program
from repro.pipeline import make_config
from repro.pipeline.machine import Machine
from repro.workloads.builder import ProgramBuilder

FP_OPS = ("fadd", "fsub", "fmul", "fdiv")


@st.composite
def fp_loop_programs(draw):
    """Random fp stream programs: loads, fp chains, optional in-place store."""
    b = ProgramBuilder()
    arrays = []
    for _ in range(draw(st.integers(1, 2))):
        length = draw(st.integers(6, 16))
        init = [
            float(draw(st.integers(-40, 40))) / 4.0 for _ in range(length)
        ]
        arrays.append((b.array(length, init, align=4), length))

    ptr = b.ireg()
    x, acc = b.freg(), b.freg()
    for _ in range(draw(st.integers(1, 2))):
        base, length = draw(st.sampled_from(arrays))
        stride = draw(st.sampled_from((0, 8, 16)))
        iters = draw(st.integers(4, 14))
        ops = [draw(st.sampled_from(FP_OPS)) for _ in range(draw(st.integers(1, 3)))]
        in_place = draw(st.booleans())
        unary = draw(st.sampled_from((None, "fneg", "fabs_", "fsqrt")))

        b.li(ptr, base)
        with b.loop(iters):
            b.fld(x, 0, ptr)
            for name in ops:
                getattr(b, name)(acc, acc, x)
            if unary:
                getattr(b, unary)(acc, acc)
            if in_place:
                b.fst(acc, 0, ptr)
            if stride:
                b.addi(ptr, ptr, stride)
    out = b.array(1)
    b.fst(acc, out, 0)
    b.release(ptr, x, acc)
    b.halt()
    return b.build()


common = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(fp_loop_programs())
@common
def test_fp_v_mode_commits_everything_soundly(program):
    trace = run_program(program, max_instructions=2500)
    config = make_config(4, 1, "V")
    stats = Machine(config, trace).run()
    assert stats.committed == len(trace.entries)


@given(fp_loop_programs())
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fp_soundness_on_wide_machine(program):
    trace = run_program(program, max_instructions=2000)
    stats = Machine(make_config(8, 2, "V"), trace).run()
    assert stats.committed == len(trace.entries)


@given(fp_loop_programs())
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_fp_final_memory_image_matches_functional(program):
    """After a full V-mode run, the commit-time memory image must equal
    the architectural memory of the functional execution."""
    trace = run_program(program, max_instructions=2000)
    machine = Machine(make_config(4, 1, "V"), trace)
    machine.run()
    assert machine.commit_memory == trace.final_memory
