"""The fuzz campaign driver: generate → oracle → corpus / minimize.

One campaign is a bounded loop (``max_programs`` and/or
``budget_seconds``) of:

1. pick an input — a fresh random genome, or a mutation of one or two
   corpus entries once the corpus is non-empty;
2. run the three-way oracle (:mod:`repro.verify.oracle`);
3. on agreement, offer the input to the corpus (kept iff its coverage
   signature shows new behaviour);
4. on divergence, delta-debug the program to a minimal reproducer and
   write a self-contained ``.repro.json`` artifact
   (:mod:`repro.verify.minimize`).

The campaign is deterministic for a given ``(seed, corpus contents)``
pair; with the corpus disabled it is deterministic for the seed alone —
which is what pins the acceptance run
(``python -m repro fuzz run --max-programs 200 --seed 7``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..observe.events import coverage_signature
from ..schemas import SCHEMA_FUZZ, error_dict
from . import faults
from .fuzzer import Corpus, generate_genome, mutate_genome, synthesize
from .minimize import instruction_count, minimize_program, save_artifact
from .oracle import DIVERGE, AGREE, OracleConfig, crash_report, run_oracle

#: fraction of inputs taken from corpus mutation once entries exist.
MUTATION_RATE = 0.5


@dataclass
class DivergenceRecord:
    """One diverging input, after minimization."""

    index: int                 #: campaign iteration that found it
    kinds: List[str]           #: divergence kinds (e.g. ["invariant"])
    original_instructions: int
    minimized_instructions: int
    minimize_tests: int
    artifact: Optional[str]    #: path of the written .repro.json

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "kinds": self.kinds,
            "original_instructions": self.original_instructions,
            "minimized_instructions": self.minimized_instructions,
            "minimize_tests": self.minimize_tests,
            "artifact": self.artifact,
        }


@dataclass
class CampaignReport:
    """Everything one ``fuzz run`` did, JSON-stable via :meth:`to_dict`."""

    seed: int
    oracle: OracleConfig
    programs: int = 0
    agreed: int = 0
    invalid: int = 0
    mutated: int = 0
    crashes: int = 0
    dynamic_instructions: int = 0
    divergences: List[DivergenceRecord] = field(default_factory=list)
    corpus: Optional[Dict] = None
    elapsed_seconds: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        """True when no divergence was found (the CI gate)."""
        return not self.divergences

    def to_dict(self) -> Dict:
        error = None
        if not self.ok:
            error = error_dict(
                "fuzz.divergence",
                f"{len(self.divergences)} divergence(s) found",
                retriable=False,
            )
        return {
            "schema": SCHEMA_FUZZ,
            "ok": self.ok,
            "error": error,
            "seed": self.seed,
            "oracle": self.oracle.to_dict(),
            "programs": self.programs,
            "agreed": self.agreed,
            "invalid": self.invalid,
            "mutated": self.mutated,
            "crashes": self.crashes,
            "dynamic_instructions": self.dynamic_instructions,
            "divergences": [d.to_dict() for d in self.divergences],
            "corpus": self.corpus,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "budget_exhausted": self.budget_exhausted,
        }

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.programs} programs "
            f"({self.mutated} mutated, {self.invalid} invalid"
            + (f", {self.crashes} crashed" if self.crashes else "")
            + "), "
            f"{self.dynamic_instructions} dynamic instructions, "
            f"{self.elapsed_seconds:.1f}s"
            + (" [budget exhausted]" if self.budget_exhausted else "")
        ]
        if self.corpus is not None:
            lines.append(
                f"corpus: {self.corpus['entries']} entries "
                f"(+{self.corpus['added_this_run']} this run), "
                f"{self.corpus['coverage_pairs']} coverage pairs"
            )
        if self.divergences:
            for record in self.divergences:
                lines.append(
                    f"DIVERGENCE at program {record.index}: "
                    f"{','.join(record.kinds)} — minimized "
                    f"{record.original_instructions} -> "
                    f"{record.minimized_instructions} instructions"
                    + (f" ({record.artifact})" if record.artifact else "")
                )
        else:
            lines.append("no divergences")
        return "\n".join(lines)


def run_campaign(
    seed: int = 0,
    max_programs: int = 100,
    budget_seconds: Optional[float] = None,
    oracle: Optional[OracleConfig] = None,
    artifact_dir: str = "fuzz-artifacts",
    use_corpus: bool = True,
    minimize: bool = True,
    minimize_tests: int = 600,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Run one fuzz campaign; see the module docstring for the loop."""
    oracle = oracle or OracleConfig()
    rng = random.Random(seed)
    corpus = Corpus() if use_corpus else None
    report = CampaignReport(seed=seed, oracle=oracle)
    started = time.monotonic()
    deadline = started + budget_seconds if budget_seconds else None

    for index in range(max_programs):
        if deadline is not None and time.monotonic() >= deadline:
            report.budget_exhausted = True
            break
        genome = None
        if corpus is not None and len(corpus) and rng.random() < MUTATION_RATE:
            base = corpus.sample(rng)
            partner = corpus.sample(rng) if rng.random() < 0.5 else None
            genome = mutate_genome(rng, base, partner=partner)
            report.mutated += 1
        if genome is None:
            genome = generate_genome(rng)
        program = synthesize(genome)
        try:
            faults.fire("fuzz.program", index=index)
            result = run_oracle(program, oracle)
        except Exception as exc:
            # Crash containment: an exception escaping the oracle is the
            # most valuable input of the whole campaign — the machinery
            # itself fell over on it.  Record it as a `crash` divergence,
            # save the offending program verbatim as a reproducer (no
            # minimization: re-running an oracle that just crashed is not
            # a safe predicate), and keep fuzzing.
            report.programs += 1
            report.crashes += 1
            crashed = crash_report(exc)
            if log:
                log(
                    f"CRASH at program {index}: "
                    f"{crashed.divergences[0].detail} — saving reproducer"
                )
            artifact_path = None
            if artifact_dir:
                artifact_path = str(
                    save_artifact(
                        f"{artifact_dir}/seed{seed}-p{index}-crash.repro.json",
                        program,
                        oracle,
                        crashed,
                        provenance={
                            "campaign_seed": seed,
                            "program_index": index,
                            "genome": genome.to_dict(),
                        },
                    )
                )
            size = instruction_count(program)
            report.divergences.append(
                DivergenceRecord(
                    index=index,
                    kinds=["crash"],
                    original_instructions=size,
                    minimized_instructions=size,
                    minimize_tests=0,
                    artifact=artifact_path,
                )
            )
            continue
        report.programs += 1
        report.dynamic_instructions += result.dynamic_instructions

        if result.verdict == AGREE:
            report.agreed += 1
            if corpus is not None:
                corpus.consider(genome, coverage_signature(result.coverage))
            continue
        if result.verdict != DIVERGE:
            report.invalid += 1
            continue

        # A real divergence: minimize and persist a reproducer.
        kinds = sorted({d.kind for d in result.divergences})
        if log:
            log(f"divergence at program {index}: {','.join(kinds)} — minimizing")
        original_size = instruction_count(program)
        minimized, tests = program, 0
        if minimize:
            def still_diverges(candidate) -> bool:
                return run_oracle(candidate, oracle).diverged

            minimized, tests = minimize_program(
                program, still_diverges, max_tests=minimize_tests
            )
        final_report = run_oracle(minimized, oracle)
        artifact_path = None
        if artifact_dir:
            key = f"seed{seed}-p{index}"
            artifact_path = str(
                save_artifact(
                    f"{artifact_dir}/{key}.repro.json",
                    minimized,
                    oracle,
                    final_report,
                    provenance={
                        "campaign_seed": seed,
                        "program_index": index,
                        "genome": genome.to_dict(),
                    },
                )
            )
        report.divergences.append(
            DivergenceRecord(
                index=index,
                kinds=kinds,
                original_instructions=original_size,
                minimized_instructions=instruction_count(minimized),
                minimize_tests=tests,
                artifact=artifact_path,
            )
        )

    report.elapsed_seconds = time.monotonic() - started
    if corpus is not None:
        report.corpus = corpus.info()
    return report
