"""The connection layer: HTTP/1.1 keep-alive framing and per-point
result streaming.

Keep-alive is a *framing* contract — every JSON response carries
``Content-Length`` and every consumed request body is read to its end —
so these tests drive several requests (including error paths and bodied
POSTs that 404) over **one** ``http.client.HTTPConnection`` and assert
the socket is never replaced.  The NDJSON event stream is the deliberate
exception and must keep answering ``Connection: close``.
"""

from __future__ import annotations

import http.client
import json

from repro.schemas import validate_envelope


POINT = {"benchmark": "compress", "mode": "V", "scale": 2_100}


def _exchange(conn, method, path, body=None):
    """One request/response on an already-open connection."""
    conn.request(
        method, path,
        json.dumps(body) if body is not None else None,
        {"Content-Type": "application/json"} if body is not None else {},
    )
    response = conn.getresponse()
    payload = json.loads(response.read())
    return response, payload


class TestKeepAlive:
    def test_many_requests_one_connection(self, daemon):
        """>= 3 requests — GET, POST, and an error path — ride one TCP
        connection; the server never closes it between responses."""
        _, client = daemon()
        conn = http.client.HTTPConnection(client.host, client.port, timeout=60)
        try:
            sockets = []
            exchanges = [
                ("GET", "/status", None, 200),
                ("POST", "/run", POINT, 200),
                ("GET", "/metrics", None, 200),
                ("GET", "/jobs/nope", None, 404),        # error envelope
                ("POST", "/run", POINT, 200),            # memo hit after error
            ]
            for method, path, body, want in exchanges:
                response, payload = _exchange(conn, method, path, body)
                assert response.status == want, payload
                assert response.version == 11
                validate_envelope(payload)
                # Framed response: Content-Length present, no close.
                assert response.getheader("Content-Length") is not None
                assert (response.getheader("Connection") or "").lower() != "close"
                sockets.append(conn.sock)
            # http.client only reuses the socket if the server kept it
            # open — a close would make it reconnect (new socket object).
            assert all(sock is sockets[0] for sock in sockets), (
                "connection was re-established mid-sequence"
            )
        finally:
            conn.close()

    def test_unknown_post_body_is_drained(self, daemon):
        """A bodied POST to an unknown route must not poison the framing:
        the next request on the same connection still parses."""
        _, client = daemon()
        conn = http.client.HTTPConnection(client.host, client.port, timeout=60)
        try:
            response, payload = _exchange(
                conn, "POST", "/no/such/route", {"filler": "x" * 2048}
            )
            assert response.status == 404
            assert payload["error"]["kind"] == "http.not_found"
            sock = conn.sock
            response, payload = _exchange(conn, "GET", "/status", None)
            assert response.status == 200
            assert conn.sock is sock
        finally:
            conn.close()

    def test_event_stream_closes_connection(self, daemon):
        """The NDJSON stream is unframed: it must answer
        ``Connection: close`` (and actually end the connection)."""
        _, client = daemon()
        status, payload, _ = client.request("POST", "/grid", {"points": [POINT]})
        assert status == 202
        job_id = payload["job"]["id"]
        conn = http.client.HTTPConnection(client.host, client.port, timeout=60)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            assert response.status == 200
            assert (response.getheader("Connection") or "").lower() == "close"
            body = response.read()  # EOF-delimited: read() returning is the test
            lines = [json.loads(line) for line in body.splitlines()]
            assert lines[-1]["schema"].startswith("repro.service.job/")
        finally:
            conn.close()


class TestResultStreaming:
    def test_per_point_results_stream_before_terminal(self, daemon):
        """``?results=1``: every grid point's ``repro.run/v1`` envelope
        arrives as a ``point.result`` event *before* the terminal job
        envelope, so a client consumes the grid incrementally."""
        _, client = daemon()
        points = [
            {"benchmark": "compress", "mode": mode, "width": width, "scale": 2_200}
            for mode in ("noIM", "V")
            for width in (4, 8)
        ]
        status, payload, _ = client.request("POST", "/grid", {"points": points})
        assert status == 202
        job_id = payload["job"]["id"]
        status, raw, headers = client.raw(
            "GET", f"/jobs/{job_id}/events?results=1", timeout=120.0
        )
        assert status == 200
        lines = [json.loads(line) for line in raw.splitlines()]
        terminal_at = next(
            i for i, line in enumerate(lines)
            if line["schema"].startswith("repro.service.job/")
        )
        results = [
            line for line in lines
            if line["schema"] == "repro.service.event/v1"
            and line["event"]["kind"] == "point.result"
        ]
        assert len(results) == len(points)
        # Incremental delivery: every per-point envelope precedes the
        # terminal job envelope (which is the last line).
        assert terminal_at == len(lines) - 1
        assert all(
            lines.index(line) < terminal_at for line in results
        )
        for line in results:
            run = line["event"]["result"]
            assert validate_envelope(run)["name"] == "repro.run"
            assert run["ok"] is True
        streamed = {
            (line["event"]["result"]["point"]["benchmark"],
             line["event"]["result"]["point"]["mode"],
             line["event"]["result"]["point"]["width"])
            for line in results
        }
        assert streamed == {
            (p["benchmark"], p["mode"], p["width"]) for p in points
        }

    def test_results_filtered_without_toggle(self, daemon):
        """Without ``?results=1`` the stream stays progress-only: no
        ``point.result`` payloads on the wire."""
        _, client = daemon()
        status, payload, _ = client.request(
            "POST", "/grid",
            {"points": [{"benchmark": "compress", "mode": "noIM", "scale": 2_300}]},
        )
        assert status == 202
        status, raw, _ = client.raw(
            "GET", f"/jobs/{payload['job']['id']}/events", timeout=120.0
        )
        assert status == 200
        lines = [json.loads(line) for line in raw.splitlines()]
        kinds = [
            line["event"]["kind"] for line in lines
            if line["schema"] == "repro.service.event/v1"
        ]
        assert "point.result" not in kinds
        assert "job.done" in kinds
