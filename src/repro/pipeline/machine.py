"""Cycle-level out-of-order superscalar timing model (trace-driven).

The machine replays a functional trace through the structures of Table 1:
fetch (gshare + I-cache), dispatch/rename (with the V/S vector extension of
Fig 6 when vectorization is on), a unified instruction window (ROB), a
load/store queue with store-to-load forwarding and conservative
disambiguation ("loads may execute when prior store addresses are known"),
per-class functional-unit pools with the paper's latencies, 1/2/4 L1 data
ports (scalar or wide), and in-order commit.

Dynamic vectorization hooks (V mode only):

* dispatch consults :class:`~repro.core.engine.VectorizationEngine` to turn
  loads/arithmetic into vector triggers or validation ops;
* the memory stage schedules speculative vector element fetches over
  left-over wide-bus capacity;
* commit performs the §3.6 store coherence check, F-flag bookkeeping and
  GMRBB tracking, and fires misspeculation recovery squashes;
* branch-misprediction recovery leaves all vector state intact (§3.5).

The model is trace-driven: wrong-path instructions are not simulated, a
misprediction costs fetch starvation until the branch resolves plus a
refill penalty (DESIGN.md §5.1).

Execution is *batched*: each cycle the execute stage makes one pass over
the waiting window, routes ready instructions into per-kind groups
(validations, zero-latency ops, loads + FU ops), and completes each group
as a unit — the groups' data-parallel work (address-mismatch compares,
completion times) goes through the active :mod:`repro.core.kernel`
backend as typed parallel arrays instead of per-instruction calls.  The
per-instruction properties the scheduler needs (kind, FU class, latency,
dependence registers, ...) come from the trace's structure-of-arrays
predecode (:meth:`repro.functional.trace.Trace.soa`), shared by fetch,
dispatch and execute.
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heapify, heappop, heappush
from operator import attrgetter
from typing import Deque, List, Optional, Tuple, Union

from ..core.engine import DecodeKind, VectorizationEngine
from ..core.kernel import get_kernel
from ..frontend.fetch import FetchUnit
from ..functional.memory import MemoryImage
from ..functional.semantics import s64
from ..functional.trace import Trace, TraceEntry
from ..isa.opcodes import FU_LATENCY, FuClass, Opcode
from ..isa.registers import NO_REG, NUM_LOGICAL_REGS, ZERO_REG
from ..memory.hierarchy import MemoryHierarchy
from ..memory.ports import DataPorts
from ..observe import profile as observe_profile
from ..observe.events import FLUSH_BRANCH, VFETCH_ISSUE
from .config import MachineConfig
from .stats import SimStats

# Instruction kinds inside the window.  K_SCALAR/K_LOAD/K_STORE match the
# trace SoA's static ``kind`` array; the vector kinds are dynamic.
K_SCALAR = 0  # ALU / control / nop-like, executes on a scalar FU
K_LOAD = 1
K_STORE = 2
K_VALIDATION = 3  # checks one vector element, no FU, no memory port
K_TRIGGER = 4  # created a vector instance; completes with its start element

#: dependence token: None (ready), a producing InFlight, or (reg, elem).
Dep = Union[None, "InFlight", Tuple]

#: mul/div scalar FUs are unpipelined (SimpleScalar convention).
_UNPIPELINED_FUS = frozenset(
    (FuClass.INT_MUL, FuClass.INT_DIV, FuClass.FP_MUL, FuClass.FP_DIV)
)

#: int FU class -> cycles a unit stays busy after accepting one op
#: (latency for unpipelined mul/div units, 1 for pipelined ones).
_FU_BUSY = {
    int(cls): (FU_LATENCY[cls] if cls in _UNPIPELINED_FUS else 1)
    for cls in FuClass
}

#: stage methods the fused run loop inlines; an instance-level override
#: of any of these routes the run through the canonical step() loop.
_STAGE_METHODS = frozenset(
    {"step", "_commit", "_execute", "_dispatch", "_schedule_memory"}
)

_FU_NONE = int(FuClass.NONE)

#: single-source fp/convert forms whose missing rs2 is NOT an immediate.
_NO_IMM_OPS = frozenset(
    (Opcode.FNEG, Opcode.FABS, Opcode.FMOV, Opcode.FSQRT, Opcode.ITOF, Opcode.FTOI)
)


class InFlight:
    """One dynamic instruction occupying the window.

    An instruction reads at most two renamed sources (``dep1``/``dep2``;
    None = ready) and writes at most one destination, so the squash-time
    rename rollback is a single (``saved_rd``, ``saved_tok``) pair.
    """

    __slots__ = (
        "seq",
        "entry",
        "kind",
        "cls",
        "lat",
        "static_ready",
        "dep1",
        "dep2",
        "base_dep",
        "data_dep",
        "done_at",
        "addr",
        "mispredicted",
        "redirected",
        "saved_rd",
        "saved_tok",
        "waiters",
        "squashed",
    )

    def __init__(self, seq: int, entry: TraceEntry, kind: int, addr: int) -> None:
        self.seq = seq
        self.entry = entry
        self.kind = kind
        # cls/lat are only set (by dispatch) for K_SCALAR instructions.
        self.static_ready = 0
        self.dep1: Dep = None
        self.dep2: Dep = None
        self.base_dep: Dep = None
        self.data_dep: Dep = None
        self.done_at: Optional[int] = None
        self.addr = addr
        self.mispredicted = False
        self.redirected = False
        self.saved_rd = -1
        self.saved_tok = None
        #: instructions sleeping until this one's completion time is known
        #: (lazily created; see Machine._execute's dependence check).
        self.waiters: Optional[List["InFlight"]] = None
        #: True once removed from the window by a squash — a stale entry on
        #: some producer's ``waiters`` list must not be re-woken.
        self.squashed = False


class VecInFlight(InFlight):
    """In-flight instruction carrying vectorizer decode state (V mode).

    Only instructions whose decode decision touched the engine use this
    class — validations, triggers, and scalars with VRMT rollback data.
    Plain scalars stay :class:`InFlight` even in V mode; the flush hook
    keys off the class to skip the engine rollback for them."""

    __slots__ = (
        "vreg",
        "velem",
        "pred_addr",
        "mismatch",
        "counts_as_validation",
        "vrmt_rollback",
    )

    def __init__(self, seq: int, entry: TraceEntry, kind: int, addr: int) -> None:
        # InFlight.__init__'s body, flattened: one constructor frame per
        # decode-touched instruction instead of two (V-mode dispatch path).
        self.seq = seq
        self.entry = entry
        self.kind = kind
        self.static_ready = 0
        self.dep1 = None
        self.dep2 = None
        self.base_dep = None
        self.data_dep = None
        self.done_at = None
        self.addr = addr
        self.mispredicted = False
        self.redirected = False
        self.saved_rd = -1
        self.saved_tok = None
        self.waiters = None
        self.squashed = False
        self.vreg = None
        self.velem = -1
        self.pred_addr: Optional[int] = None
        self.mismatch = False
        self.counts_as_validation = False
        self.vrmt_rollback = None

    # Validation/trigger records are only ever referenced by the ROB and
    # the scheduler lists (rename holds a (reg, elem) tuple, never the
    # record itself), so the fused loop recycles them at commit through a
    # free pool; reset re-runs the full constructor.
    reset = __init__


_SEQ_KEY = attrgetter("seq")


class Machine:
    """One timing simulation of one trace under one configuration."""

    def __init__(
        self,
        config: MachineConfig,
        trace: Trace,
        hierarchy: Optional[MemoryHierarchy] = None,
        gshare=None,
        indirect=None,
        observer=None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.stats = SimStats()
        # Observability: the default (observer=None) leaves every hook
        # dormant — emission sites cost one `is not None` test and the
        # run loop is the unobserved one.
        self.observer = observer
        bus = observer.bus if observer is not None else None
        self._bus = bus
        # Sampled simulation passes in a pre-warmed hierarchy and
        # predictors (repro.sampling); exact mode builds them cold.
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy(config.hierarchy)
        self.hierarchy.bus = bus
        self.ports = DataPorts(config.ports, config.wide_bus)
        self.fetch_unit = FetchUnit(
            trace,
            self.hierarchy,
            config.width,
            config.gshare_entries,
            gshare=gshare,
            indirect=indirect,
        )
        self.fetch_unit.bus = bus
        #: architectural memory as of the last committed store — the image
        #: speculative vector loads read from.
        self.commit_memory: MemoryImage = trace.initial_memory.copy()
        self.engine: Optional[VectorizationEngine] = (
            VectorizationEngine(config, self.stats, observer) if config.vectorize else None
        )
        #: structure-of-arrays predecode shared with fetch and dispatch.
        self._soa = trace.soa()
        self._entries = trace.entries
        #: process-wide batch-evaluation backend (python or numpy).
        self._kernel = get_kernel()

        self.rob: Deque[InFlight] = deque()
        self.lsq: List[InFlight] = []
        self.waiting: List[InFlight] = []
        #: instructions whose first blocking time is *known* and in the
        #: future, parked off the per-cycle scan until that cycle.
        #: Min-heap of (wake_cycle, seq, InFlight) — see _execute for the
        #: exactness argument.
        self._parked: List[Tuple[int, int, InFlight]] = []
        #: recycled validation/trigger records (see VecInFlight.reset).
        self._vec_pool: List[VecInFlight] = []
        self.mem_queue: List[InFlight] = []
        #: fetched-but-undispatched instructions as packed ints:
        #: (seq << 1) | mispredicted  (see FetchUnit.fetch_into).
        self.fetch_queue: Deque[int] = deque()
        #: flat rename map indexed by logical register: None = architectural
        #: (ready), an InFlight = scalar producer, (vreg, elem) = vector.
        self.rename: List = [None] * NUM_LOGICAL_REGS
        #: committed vector mappings per logical register: (reg, gen, elem).
        self.committed_vec_map: List[Optional[Tuple]] = [None] * NUM_LOGICAL_REGS
        self.committed_count = 0
        self._max_dispatched_seq = -1
        self._now = 0
        #: scalar FU pools: int FU class -> list of unit free-at cycles.
        self.fu_free = {
            int(cls): [0] * count for cls, count in config.fu_pool_sizes().items()
        }
        #: (branch_seq, resolved_cycle) windows for Fig 10 accounting.
        self.cfi_windows: Deque[Tuple[int, int]] = deque()
        #: per-pc backward-branch flags for GMRBB tracking.
        program = trace.program
        self._is_backward = [program.is_backward(pc) for pc in range(len(program))]
        # Hoisted configuration scalars (read every cycle in the hot loop;
        # going through the config dataclass costs two attribute lookups).
        self._width = config.width
        self._commit_width = config.commit_width
        self._rob_size = config.rob_size
        self._lsq_size = config.lsq_size
        self._fetch_queue_size = config.fetch_queue_size
        self._mispredict_penalty = config.mispredict_penalty
        self._wide_bus = config.wide_bus
        self._line_bytes = config.hierarchy.l1d_line
        self._max_store_commit = config.vector.max_store_commit
        self._block_scalar = (
            self.engine is not None and config.vector.block_on_scalar_operand
        )
        #: observability hooks, armed by _run_observed (None = dormant).
        self._batch_hist = None
        self._profiler = None
        self._mem_seconds = 0.0

    # ==================================================================
    # helpers
    # ==================================================================

    def _acquire_fu(self, fu_class: int, now: int) -> bool:
        """Grab a scalar functional unit for an op starting this cycle."""
        pool = self.fu_free.get(fu_class)
        if pool is None:
            return True
        for i, free_at in enumerate(pool):
            if free_at <= now:
                # Simple units are fully pipelined; mul/div units are busy
                # for the whole operation (see _FU_BUSY).
                pool[i] = now + _FU_BUSY[fu_class]
                return True
        return False

    # ==================================================================
    # commit
    # ==================================================================

    def _commit(self, now: int) -> None:
        committed = 0
        stores_this_cycle = 0
        engine = self.engine
        rob = self.rob
        stats = self.stats
        ports = self.ports
        commit_width = self._commit_width
        max_store_commit = self._max_store_commit
        is_backward = self._is_backward
        bkinds = self._soa.bkind
        vec_map = self.committed_vec_map
        cfi_windows = self.cfi_windows
        while rob and committed < commit_width:
            fl = rob[0]
            t = fl.done_at
            if t is None or t > now:
                break
            entry = fl.entry
            kind = fl.kind
            conflict = False
            if kind == K_STORE:
                if engine is not None and stores_this_cycle >= max_store_commit:
                    break
                if ports.available() == 0:
                    break
                ready = self.hierarchy.data_access(fl.addr, now, is_write=True)
                if ready is None:  # MSHR full
                    break
                ports.take()
                ports.open_write()
                stats.write_accesses += 1
                self.commit_memory.store(fl.addr, entry.value)
                stores_this_cycle += 1
                stats.committed_stores += 1
                if engine is not None:
                    conflict = engine.on_store_commit(fl.addr, now)

            rob.popleft()
            if kind == K_LOAD or kind == K_STORE:
                # In-order commit means the oldest memory op leaves first,
                # so this is lsq[0] except across a just-flushed window.
                lsq = self.lsq
                if lsq[0] is fl:
                    del lsq[0]
                else:
                    lsq.remove(fl)
            committed += 1
            stats.committed += 1
            if cfi_windows:
                self._account_cfi(fl, now)

            if engine is not None:
                # Everything below maintains vector-side commit state, which
                # does not exist in the scalar (noIM/IM) machines.
                if kind >= K_VALIDATION:  # K_VALIDATION or K_TRIGGER
                    engine.on_validation_commit(fl, now, self.ports)

                rd = entry.rd
                if rd > 0:  # neither NO_REG nor the zero register
                    old = vec_map[rd]
                    if old is not None:
                        engine.set_element_freed(old[0], old[1], old[2], now)
                    if kind >= K_VALIDATION:
                        vec_map[rd] = (fl.vreg, fl.vreg.gen, fl.velem)
                    else:
                        vec_map[rd] = None

                if is_backward[entry.pc] and bkinds[fl.seq]:
                    engine.on_backward_branch_commit(entry.pc, now)

            if conflict:
                # §3.6: squash everything younger than the store.
                self._flush_from(fl.seq + 1, now + 1 + self._mispredict_penalty, now)
                break
        self.committed_count += committed

    def _account_cfi(self, fl: InFlight, now: int) -> None:
        """Fig 10: count committed instructions in the 100 after each
        mispredicted branch, and which of them reuse pre-flush vector work."""
        windows = self.cfi_windows
        seq = fl.seq
        while windows and seq > windows[0][0] + 100:
            windows.popleft()
        if not windows:
            return
        is_validation = fl.kind >= K_VALIDATION and fl.counts_as_validation
        for bseq, resolved in windows:
            if bseq < seq <= bseq + 100:
                self.stats.cfi_window_instructions += 1
                if is_validation and fl.vreg is not None and fl.velem >= 0:
                    # Fig 10's metric: the instruction needed no execution —
                    # it validated vector state that survived the flush.
                    self.stats.cfi_reused += 1
                    rt = fl.vreg.r_time[fl.velem]
                    if rt is not None and rt <= resolved:
                        self.stats.cfi_precomputed += 1

    # ==================================================================
    # execute / memory
    # ==================================================================

    def _execute(self, now: int) -> None:
        """One batched pass over the waiting window.

        Phase 1 walks the seq-sorted waiting list once, resolving
        dependences and routing *ready* instructions into per-kind groups
        (validations/triggers, zero-latency completions, issue ops);
        phases 2–4 then complete each group as a unit.  The phase split is
        exact because the deferred work has no intra-cycle feedback into
        phase 1's routing decisions:

        * validations and stores consume neither issue width nor FUs, so
          extracting them from the seq-ordered scan leaves every width/FU
          allocation decision — made in phase 4 in seq order over the
          issue group — unchanged;
        * completion times assigned this cycle are always > ``now``, so no
          instruction processed later in the same pass can observe them as
          ready — consumers sleep on the producer's ``waiters`` list and
          re-enter at exactly the cycle the per-instruction rescan would
          have advanced (see the dependence-check comment below);
        * a validation failure at seq F only flushes instructions with
          seq >= F; phases 3–4 gate on F, and instructions older than F
          are unaffected by the failure's vector-side writes.
        """
        issues_left = self._width
        engine = self.engine
        stats = self.stats
        try_load = self._try_load
        # Parked instructions whose wake cycle has arrived rejoin the
        # scan.  Both lists are seq-sorted, so extend+sort is a cheap
        # two-run merge and the scan order matches the never-parked order.
        parked = self._parked
        if parked and parked[0][0] <= now:
            waiting = self.waiting
            while parked and parked[0][0] <= now:
                waiting.append(heappop(parked)[2])
            waiting.sort(key=_SEQ_KEY)
        still_waiting: List[InFlight] = []
        keep = still_waiting.append
        flush_seq: Optional[int] = None
        # Ready groups, built lazily (most cycles most are empty).
        rv: Optional[List] = None  # validations / triggers
        rf: Optional[List] = None  # zero-latency: stores + no-FU scalars
        ri: Optional[List] = None  # issue ops: loads + FU scalars
        # ---- phase 1: dependence scan + routing --------------------------
        for fl in self.waiting:
            # Dependence check, with compaction: a satisfied token can
            # never become unsatisfied again (done_at and r_time are
            # written once per object, ``now`` only grows), so each slot
            # is cleared the first cycle it is ready and later rescans
            # skip straight to the structural checks.  A blocked
            # instruction leaves the scan entirely instead of being
            # rescanned every cycle: when the blocking token's time is
            # already known it parks on the timed heap until that cycle;
            # when the producer has not issued yet (done_at still None) it
            # sleeps on the producer's ``waiters`` list and is moved to
            # the heap the moment the producer's completion time is set.
            # Either way it rejoins the scan — in seq order — exactly at
            # the first cycle the original every-cycle rescan could have
            # advanced past that token, so the elided rescans are
            # unobservable.
            dep = fl.dep1
            if dep is not None:
                if type(dep) is tuple:
                    t = dep[0].r_time[dep[1]]
                    if t is None:
                        # Unscheduled vector element: no wake hook; rescan.
                        keep(fl)
                        continue
                    if t > now:
                        heappush(parked, (t, fl.seq, fl))
                        continue
                else:
                    t = dep.done_at
                    if t is None:
                        w = dep.waiters
                        if w is None:
                            dep.waiters = [fl]
                        else:
                            w.append(fl)
                        continue
                    if t > now:
                        heappush(parked, (t, fl.seq, fl))
                        continue
                fl.dep1 = None
            dep = fl.dep2
            if dep is not None:
                if type(dep) is tuple:
                    t = dep[0].r_time[dep[1]]
                    if t is None:
                        keep(fl)
                        continue
                    if t > now:
                        heappush(parked, (t, fl.seq, fl))
                        continue
                else:
                    t = dep.done_at
                    if t is None:
                        w = dep.waiters
                        if w is None:
                            dep.waiters = [fl]
                        else:
                            w.append(fl)
                        continue
                    if t > now:
                        heappush(parked, (t, fl.seq, fl))
                        continue
                fl.dep2 = None
            if fl.static_ready > now:
                keep(fl)
                continue
            kind = fl.kind
            if kind == K_SCALAR:
                if fl.cls == _FU_NONE:
                    if rf is None:
                        rf = [fl]
                    else:
                        rf.append(fl)
                elif ri is None:
                    ri = [fl]
                else:
                    ri.append(fl)
            elif kind == K_LOAD:
                if ri is None:
                    ri = [fl]
                else:
                    ri.append(fl)
            elif kind == K_STORE:
                if rf is None:
                    rf = [fl]
                else:
                    rf.append(fl)
            elif rv is None:
                rv = [fl]
            else:
                rv.append(fl)

        bh = self._batch_hist
        done1 = now + 1
        # ---- phase 2: validations / triggers (batched address compare) ---
        if rv is not None:
            if bh is not None:
                bh(len(rv))
            for fl in rv:
                # Inlined engine.validation_check: element still live and
                # (for loads) predicted address matches the actual one.
                # The address verdict itself was precomputed at dispatch
                # (``fl.mismatch``) — both operands are decode-time
                # constants — so no batched compare runs here.
                vreg = fl.vreg
                if vreg.freed or vreg.defunct or fl.mismatch:
                    # Misspeculation: recover to scalar from this instruction.
                    engine.on_validation_failure(fl, now)
                    flush_seq = fl.seq
                    # The rest of the group is younger (seq order): flushed.
                    break
                t = vreg.r_time[fl.velem]  # inlined vreg.elem_done
                if t is not None:
                    if t <= now:
                        fl.done_at = done1
                    else:
                        # The completion time is known and r_time is
                        # write-once while this op is in flight (its U flag
                        # pins the register against freeing/recycling), so
                        # the op cannot become ready before cycle ``t``.
                        # It can only *fail* early via a defunct flip, and
                        # both defunct writers already wake it: a store-
                        # coherence conflict flushes everything younger
                        # than the committing store (which includes every
                        # parked op), and a validation failure drains the
                        # park heap below.  Parking is therefore exact.
                        heappush(parked, (t, fl.seq, fl))
                else:
                    keep(fl)
        # ---- phase 3: zero-latency completions ---------------------------
        if rf is not None:
            for fl in rf:
                if flush_seq is not None and fl.seq >= flush_seq:
                    break
                fl.done_at = done1
                if fl.kind != K_STORE:
                    # Address generation + data capture for stores; memory
                    # is written at commit and nothing renames to a store.
                    if fl.waiters is not None:
                        self._wake_waiters(fl)
                    if fl.mispredicted and not fl.redirected:
                        self._resolve_mispredict(fl, now)
        # ---- phase 4: issue (loads + FU ops, seq order, width-limited) ---
        if ri is not None:
            acquire_fu = self._acquire_fu
            by_cls = {}
            for fl in ri:
                if flush_seq is not None and fl.seq >= flush_seq:
                    break
                if fl.kind == K_LOAD:
                    if issues_left <= 0:
                        keep(fl)
                        continue
                    r = try_load(fl, now)
                    if type(r) is int:
                        if r == 0:
                            issues_left -= 1
                        elif r < 0:
                            keep(fl)
                        else:
                            heappush(parked, (r, fl.seq, fl))
                    else:
                        # Sleep on the store's producer until its
                        # completion time is known.
                        w = r.waiters
                        if w is None:
                            r.waiters = [fl]
                        else:
                            w.append(fl)
                    continue
                if issues_left <= 0:
                    keep(fl)
                    continue
                cls = fl.cls
                if not acquire_fu(cls, now):
                    keep(fl)
                    continue
                issues_left -= 1
                group = by_cls.get(cls)
                if group is None:
                    by_cls[cls] = [fl]
                else:
                    group.append(fl)
            # Complete each functional class as one batch: one shared
            # completion time per class, assigned group-wide.
            for cls, group in by_cls.items():
                if bh is not None:
                    bh(len(group))
                done = now + group[0].lat
                for fl in group:
                    fl.done_at = done
                    # Only scalar ALU ops and scalar loads ever appear as
                    # producers in the rename map, so only they can hold
                    # sleepers (loads wake from _try_load/_schedule_memory).
                    if fl.waiters is not None:
                        self._wake_waiters(fl)
                    if fl.mispredicted and not fl.redirected:
                        self._resolve_mispredict(fl, now)

        if flush_seq is not None and parked:
            # The failure defuncted a register; any parked op — in
            # particular an *older* validation of the same register — must
            # be rescanned so it notices the flip on the next cycle, just
            # as an unparked entry would.  (Younger ones are flushed below.)
            still_waiting.extend(e[2] for e in parked)
            del parked[:]
        if len(still_waiting) > 1:
            # Phases 1/2/4 each keep in seq order, so this is a cheap
            # merge of a few sorted runs (timsort), restoring the
            # seq-sorted invariant the next scan relies on.
            still_waiting.sort(key=_SEQ_KEY)
        self.waiting = still_waiting
        if flush_seq is not None:
            self._flush_from(flush_seq, now + 1 + self._mispredict_penalty, now)
        if self.mem_queue or (engine is not None and engine.pending_fetches):
            prof = self._profiler
            if prof is None:
                self._schedule_memory(now)
            else:
                # Satellite of the batching rework: port scheduling
                # reached from inside the execute stage is real memory
                # work — attribute it to the ``memory`` stage instead of
                # silently folding it into ``execute``.
                clock = observe_profile.perf_counter
                t0 = clock()
                self._schedule_memory(now)
                dt = clock() - t0
                prof.account("memory", dt)
                self._mem_seconds += dt

    def _resolve_mispredict(self, fl: InFlight, now: int) -> None:
        """Branch resolution: start the fetch-redirect/refill epilogue."""
        fl.redirected = True
        self.stats.branch_mispredicts += 1
        resolve = fl.done_at
        if self._bus is not None:
            self._bus.emit(
                now, FLUSH_BRANCH, pc=fl.entry.pc, seq=fl.seq, resolve=resolve
            )
        self.fetch_unit.redirect(fl.seq + 1, resolve + self._mispredict_penalty)
        self.cfi_windows.append((fl.seq, resolve))

    def _wake_waiters(self, fl: InFlight) -> None:
        """``fl``'s completion time just became known: move its sleepers to
        the timed park heap so they rejoin the execute scan at that cycle.
        Entries squashed while asleep are dropped (their re-fetched
        incarnations re-register themselves)."""
        done = fl.done_at
        parked = self._parked
        for c in fl.waiters:
            if not c.squashed:
                heappush(parked, (done, c.seq, c))
        fl.waiters = None

    def _try_load(self, fl: InFlight, now: int):
        """Disambiguate a ready load.

        Returns 0 when the load issued this cycle (forwarded or queued to
        the memory stage, consuming an issue slot), -1 when it must stay
        on the rescanned waiting list (blocked on an unscheduled vector
        element), a cycle number > now to park until, or the blocking
        store's producing InFlight to sleep on (completion time unknown).
        """
        # All older stores must have known addresses (their base dep ready).
        my_addr = fl.addr
        my_seq = fl.seq
        forwarding_store: Optional[InFlight] = None
        for other in self.lsq:
            if other.seq >= my_seq:
                break
            if other.kind != K_STORE:
                continue
            dep = other.base_dep
            if dep is None:
                pass
            elif type(dep) is tuple:
                t = dep[0].r_time[dep[1]]
                if t is None:
                    return -1
                if t + 1 > now:
                    # Exact rejoin: the per-cycle rescan would first pass
                    # this store at cycle t + 1 (t is write-once).
                    return t + 1
            else:
                t = dep.done_at
                if t is None:
                    return dep
                if t + 1 > now:
                    return t + 1
            if other.addr == my_addr:
                forwarding_store = other  # youngest older match wins
        if forwarding_store is not None:
            dep = forwarding_store.data_dep
            if dep is None:
                pass
            elif type(dep) is tuple:
                t = dep[0].r_time[dep[1]]
                if t is None:
                    return -1
                if t > now:
                    return t
            else:
                t = dep.done_at
                if t is None:
                    return dep
                if t > now:
                    return t
            fl.done_at = now + 1
            if fl.waiters is not None:
                self._wake_waiters(fl)
            self.stats.forwarded_loads += 1
            return 0
        self.mem_queue.append(fl)
        return 0

    def _schedule_memory(self, now: int) -> None:
        """Issue L1 data-port transactions: scalar loads, then (V mode)
        speculative vector element fetches over the remaining capacity."""
        ports = self.ports
        if ports.available() == 0:
            return
        engine = self.engine
        if not self.mem_queue and (engine is None or not engine.pending_fetches):
            return
        if not self._wide_bus:
            # Scalar buses: one word per port per transaction.
            remaining: List[InFlight] = []
            queue = self.mem_queue
            for i, fl in enumerate(queue):
                if ports.available() == 0:
                    remaining.extend(queue[i:])
                    break
                ready = self.hierarchy.data_access(fl.addr, now)
                if ready is None:  # MSHR full; retry next cycle
                    remaining.extend(queue[i:])
                    break
                ports.take()
                txn = ports.open_read()
                ports.add_useful(txn, 1)
                self.stats.read_accesses += 1
                self.stats.scalar_loads_to_memory += 1
                fl.done_at = ready
                if fl.waiters is not None:
                    self._wake_waiters(fl)
            self.mem_queue = remaining
            return

        # Wide bus: group pending reads by line; one access serves up to 4.
        # Group members mix scalar loads (InFlight objects) and vector
        # element fetches (3-tuples) — the member's type is its tag.
        line_bytes = self._line_bytes
        mem_queue = self.mem_queue
        groups: List[Tuple[int, List]] = []
        index = {}
        for fl in mem_queue:
            addr = fl.addr
            line = addr - (addr % line_bytes)
            g = index.get(line)
            if g is not None and len(g) < 4:
                g.append(fl)
            else:
                g = [fl]
                index[line] = g
                groups.append((line, g))
        taken_fetches = []
        if engine is not None:
            # Up to one line group per free port, four elements per group.
            budget = 4 * ports.available()
            taken_fetches = engine.take_fetches(budget)
            for item in taken_fetches:
                addr = item[2]
                line = addr - (addr % line_bytes)
                g = index.get(line)
                if g is not None and len(g) < 4:
                    g.append(item)
                else:
                    g = [item]
                    index[line] = g
                    groups.append((line, g))

        # Serving marks members in place (done_at / r_time[elem] become
        # non-None), so the retain filters below need no served-id sets.
        scalar_served = False
        vector_served = False
        blocked = False
        bus = self._bus
        stats = self.stats
        data_access = self.hierarchy.data_access
        commit_load = self.commit_memory.load
        for line, members in groups:
            if blocked or ports.available() == 0:
                break
            ready = data_access(line, now)
            if ready is None:  # MSHR full: stop issuing this cycle
                blocked = True
                break
            ports.take()
            txn = ports.open_read()
            stats.read_accesses += 1
            scalar_words = None
            spec_words = 0
            for m in members:
                if type(m) is tuple:
                    reg, elem, addr = m
                    # Apply the architectural write-back conversion (LD
                    # wraps to int64, FLD coerces to float): a raw memory
                    # word can be the other domain's type — e.g. an FST'd
                    # float re-read by LD — and downstream vector ALU
                    # instances must see what a scalar consumer would.
                    word = commit_load(addr)
                    reg.values[elem] = (
                        float(word) if reg.fp_load else s64(int(word))
                    )
                    reg.r_time[elem] = ready
                    reg.txn_ids[elem] = txn
                    spec_words += 1
                    vector_served = True
                    if bus is not None:
                        bus.emit(
                            now, VFETCH_ISSUE, pc=reg.pc,
                            elem=elem, addr=addr, ready=ready,
                        )
                else:
                    m.done_at = ready
                    if m.waiters is not None:
                        self._wake_waiters(m)
                    if scalar_words is None:
                        scalar_words = {m.addr}
                    else:
                        scalar_words.add(m.addr)
                    scalar_served = True
                    stats.scalar_loads_to_memory += 1
            if scalar_words:
                ports.add_useful(txn, len(scalar_words))
            if spec_words:
                ports.add_speculative(txn, spec_words)

        if scalar_served:
            self.mem_queue = [fl for fl in mem_queue if fl.done_at is None]
        if taken_fetches:
            if vector_served:
                engine.requeue_fetches(
                    [
                        item
                        for item in taken_fetches
                        if item[0].r_time[item[1]] is None
                    ]
                )
            else:
                engine.requeue_fetches(taken_fetches)

    # ==================================================================
    # dispatch
    # ==================================================================

    def _dispatch(self, now: int) -> None:
        """Rename and insert up to ``width`` fetched instructions into the
        window.  All static per-instruction properties come from the trace
        SoA arrays, indexed by the packed seq from the fetch queue."""
        dispatched = 0
        engine = self.engine
        width = self._width
        lsq_size = self._lsq_size
        fetch_queue = self.fetch_queue
        rob = self.rob
        lsq = self.lsq
        waiting = self.waiting
        stats = self.stats
        rename = self.rename
        entries = self._entries
        soa = self._soa
        kinds = soa.kind
        clss = soa.cls
        lats = soa.lat
        valus = soa.valu
        rds = soa.rd
        d1s = soa.dep1
        d2s = soa.dep2
        addrs = soa.addr
        block_scalar = self._block_scalar
        max_seq = self._max_dispatched_seq
        ready_at = now + 1
        rob_room = self._rob_size - len(rob)
        pcs_soa = soa.pc
        vpcs = engine.vrmt.pcs if engine is not None else None
        while fetch_queue and dispatched < width:
            if rob_room <= 0:
                break
            packed = fetch_queue[0]
            seq = packed >> 1
            kind = kinds[seq]
            if kind != K_SCALAR and len(lsq) >= lsq_size:
                break
            entry = entries[seq]
            is_valu = valus[seq]
            # Vectorizer probe fast path: an arithmetic instruction whose PC
            # never had a VRMT mapping and whose renamed sources are all
            # scalar can only decode to a plain scalar with no engine state
            # touched — skip the decode call (and the scalar-operand stall
            # check, which needs a live mapping) outright.  ``vpcs`` is a
            # conservative superset of the live VRMT keys, and a VRMT probe
            # for an unmapped PC has no side effects, so elided and executed
            # decodes are indistinguishable.
            vec_probe = False
            if is_valu and vpcs is not None:
                if pcs_soa[seq] in vpcs:
                    vec_probe = True
                else:
                    r = d1s[seq]
                    if r >= 0 and type(rename[r]) is tuple:
                        vec_probe = True
                    else:
                        r = d2s[seq]
                        if r >= 0 and type(rename[r]) is tuple:
                            vec_probe = True
            if (
                block_scalar
                and vec_probe
                and self._blocked_on_scalar_operand(entry, now)
            ):
                stats.scalar_operand_stall_cycles += 1
                break
            fetch_queue.popleft()
            dispatched += 1
            rob_room -= 1

            first_time = seq > max_seq
            if first_time:
                max_seq = seq
                self._max_dispatched_seq = seq

            decision = None
            if engine is not None:
                if kind == K_LOAD:
                    decision = engine.decode_load(entry, now, first_time)
                elif vec_probe and entry.rd != NO_REG:
                    decision = engine.decode_alu(entry, self._src_descs(entry), now)

            if decision is not None and decision.kind is not DecodeKind.SCALAR:
                fl = VecInFlight(
                    seq,
                    entry,
                    K_VALIDATION
                    if decision.kind is DecodeKind.VALIDATION
                    else K_TRIGGER,
                    addrs[seq],
                )
                fl.vreg = decision.reg
                fl.velem = decision.elem
                p = decision.pred_addr
                fl.pred_addr = p
                # Both compare operands are fixed at decode (the engine's
                # predicted address and the trace's actual one), so the
                # validation verdict is precomputed here instead of
                # re-deriving it in a batched compare every execute cycle.
                if p is not None and p != entry.addr:
                    fl.mismatch = True
                fl.counts_as_validation = decision.counts_as_validation
                fl.vrmt_rollback = decision.vrmt_rollback
                fl.static_ready = ready_at
                if kind == K_LOAD:
                    # The address check needs the base register (AGU).
                    r = d1s[seq]
                    if r >= 0:
                        fl.dep1 = rename[r]
                rd = rds[seq]
                if rd > 0:
                    fl.saved_rd = rd
                    fl.saved_tok = rename[rd]
                    rename[rd] = (decision.reg, decision.elem)
                rob.append(fl)
                waiting.append(fl)
                continue

            # A scalar decision may still have touched the VRMT (entry
            # invalidated or chain attempt failed); only then does the
            # in-flight record need the vector-capable class for its
            # rollback slot.
            if decision is not None and decision.vrmt_rollback is not None:
                fl = VecInFlight(seq, entry, kind, addrs[seq])
                fl.vrmt_rollback = decision.vrmt_rollback
            else:
                fl = InFlight(seq, entry, kind, addrs[seq])
            if kind == K_LOAD:
                r = d1s[seq]
                dep = rename[r] if r >= 0 else None
                fl.base_dep = dep
                fl.dep1 = dep
                rd = rds[seq]
                if rd > 0:
                    fl.saved_rd = rd
                    fl.saved_tok = rename[rd]
                    rename[rd] = fl
                lsq.append(fl)
            elif kind == K_STORE:
                r = d1s[seq]
                base = rename[r] if r >= 0 else None
                r = d2s[seq]
                data = rename[r] if r >= 0 else None
                fl.base_dep = base
                fl.data_dep = data
                fl.dep1 = base
                fl.dep2 = data
                lsq.append(fl)
            else:
                fl.cls = clss[seq]
                fl.lat = lats[seq]
                r = d1s[seq]
                if r >= 0:
                    fl.dep1 = rename[r]
                r = d2s[seq]
                if r >= 0:
                    fl.dep2 = rename[r]
                rd = rds[seq]
                if rd > 0:
                    fl.saved_rd = rd
                    fl.saved_tok = rename[rd]
                    rename[rd] = fl
            fl.static_ready = ready_at
            if packed & 1:
                fl.mispredicted = True
            rob.append(fl)
            waiting.append(fl)
        stats.fetched += dispatched

    def _blocked_on_scalar_operand(self, entry: TraceEntry, now: int) -> bool:
        """§3.2 / Fig 7: an instruction that *was previously vectorized*
        with a scalar register operand must compare that register's current
        value against the VRMT's captured value before it can be turned
        into a validation — so it waits at decode until the value is
        available.  Fresh vector instances do not stall: the vector FU
        reads the scalar register file once, when it is ready (§3.4).

        Callers pre-check ``self._block_scalar`` and membership in
        ``VECTORIZABLE_ALU_OPS`` (dispatch hot path)."""
        mapping = self.engine.vrmt.table.peek(entry.pc)
        if mapping is None or mapping.scalar_value is None:
            return False
        rename = self.rename
        for src in (entry.rs1, entry.rs2):
            if src <= 0:  # absent source or the always-ready zero register
                continue
            tok = rename[src]
            if tok is not None and type(tok) is not tuple:
                t = tok.done_at
                if t is None or t > now:
                    return True
        return False

    def _src_descs(self, entry: TraceEntry) -> List[Tuple]:
        """Source descriptors for the engine's ALU decode (see decode_alu).

        Returns a list (not a tuple): the engine only iterates it, and the
        decode path runs once per arithmetic instruction."""
        rename = self.rename
        descs: List[Tuple] = []
        src = entry.rs1
        if src != NO_REG:
            tok = rename[src] if src != ZERO_REG else None
            if type(tok) is tuple:
                descs.append(("V", tok[0], tok[1]))
            else:
                descs.append(("S", src, entry.s1))
        src = entry.rs2
        if src == NO_REG:
            # Immediate-operand forms carry the immediate as the final operand.
            if entry.op not in _NO_IMM_OPS:
                descs.append(("imm", entry.imm))
        else:
            tok = rename[src] if src != ZERO_REG else None
            if type(tok) is tuple:
                descs.append(("V", tok[0], tok[1]))
            else:
                descs.append(("S", src, entry.s2))
        return descs

    # ==================================================================
    # squash
    # ==================================================================

    def _flush_from(self, from_seq: int, resume_cycle: int, now: int) -> None:
        """Remove every in-flight instruction with seq >= from_seq and
        restart fetch there.  Vector registers survive (§3.5); scalar-side
        bookkeeping (rename, VRMT offsets, U flags) rolls back."""
        engine = self.engine
        rename = self.rename
        rob = self.rob
        while rob and rob[-1].seq >= from_seq:
            fl = rob.pop()
            # A squashed entry may still sit on a surviving producer's
            # waiters list; the flag keeps it from being re-woken.
            fl.squashed = True
            # Youngest-first pop leaves the oldest flushed writer's saved
            # token as the final rename state — the exact pre-flush map.
            rd = fl.saved_rd
            if rd >= 0:
                rename[rd] = fl.saved_tok
            if engine is not None and fl.__class__ is not InFlight:
                # Plain InFlight records never touched the engine at decode
                # (no rollback data, no U flag); only VecInFlight ones need
                # the engine-side rewind.
                engine.on_flush_entry(fl, now)
        self.lsq = [fl for fl in self.lsq if fl.seq < from_seq]
        self.waiting = [fl for fl in self.waiting if fl.seq < from_seq]
        if self._parked:
            self._parked = [e for e in self._parked if e[1] < from_seq]
            heapify(self._parked)
        self.mem_queue = [fl for fl in self.mem_queue if fl.seq < from_seq]
        self.fetch_queue.clear()
        self.fetch_unit.redirect(from_seq, resume_cycle)

    # ==================================================================
    # main loop
    # ==================================================================

    def step(self, now: int) -> None:
        """Simulate one cycle (commit -> execute/memory -> dispatch -> fetch).

        Stages whose structures are provably idle this cycle are skipped
        outright (an empty ROB cannot commit, an empty waiting list cannot
        issue, ...); each guard reproduces the stage's own first-iteration
        exit condition, so elided and executed cycles are indistinguishable.
        """
        # Inlined ports.begin_cycle() — one call per simulated cycle.
        ports = self.ports
        ports.cycles += 1
        ports._used_this_cycle = 0
        engine = self.engine
        if engine is not None and engine.pending_alu:
            engine.tick(now)
        rob = self.rob
        if rob:
            t = rob[0].done_at
            if t is not None and t <= now:
                self._commit(now)
        if self.waiting or self._parked:
            self._execute(now)
        elif self.mem_queue or (engine is not None and engine.pending_fetches):
            self._schedule_memory(now)
        if self.fetch_queue:
            self._dispatch(now)
        fetch_queue = self.fetch_queue
        room = self._fetch_queue_size - len(fetch_queue)
        if room > 0:
            self.fetch_unit.fetch_into(now, fetch_queue, room)

    def _run_fast(self, total: int, safety: int) -> int:
        """The unobserved main loop: :meth:`step`'s stage sequence with the
        per-cycle stage bodies (commit, execute, dispatch) inlined and every
        loop-invariant object hoisted to a local once.

        One simulated cycle costs one pass through this loop body instead
        of five method calls each re-hoisting the same attributes.  The
        stage bodies below MUST stay in lock-step with :meth:`_commit`,
        :meth:`_execute` and :meth:`_dispatch` — observed (metrics /
        profiler) runs and single-stepping tests use those canonical
        methods, and the step-vs-run parity test holds the two paths to
        bit-identical results.  Structures a squash rebinds (``waiting``,
        ``lsq``, ``mem_queue``, ``_parked``) are re-read from ``self`` at
        each stage; everything hoisted here is only ever mutated in place.
        """
        ports = self.ports
        engine = self.engine
        rob = self.rob
        stats = self.stats
        fetch_queue = self.fetch_queue
        rename = self.rename
        entries = self._entries
        soa = self._soa
        kinds = soa.kind
        clss = soa.cls
        lats = soa.lat
        valus = soa.valu
        rds = soa.rd
        d1s = soa.dep1
        d2s = soa.dep2
        addrs = soa.addr
        pcs_soa = soa.pc
        bkinds = soa.bkind
        vec_map = self.committed_vec_map
        cfi_windows = self.cfi_windows
        is_backward = self._is_backward
        data_access = self.hierarchy.data_access
        commit_store = self.commit_memory.store
        line_bytes = self._line_bytes
        kernel = self._kernel
        resolve_mispredict = self._resolve_mispredict
        flush_from = self._flush_from
        schedule_memory = self._schedule_memory
        fetch_unit = self.fetch_unit
        fetch_into = fetch_unit.fetch_into
        blocked_on_scalar = self._blocked_on_scalar_operand
        src_descs_of = self._src_descs
        fu_free = self.fu_free
        fu_busy = _FU_BUSY
        ports_available = ports.available
        ports_take = ports.take
        ports_open_read = ports.open_read
        ports_open_write = ports.open_write
        ports_add_useful = ports.add_useful
        width = self._width
        commit_width = self._commit_width
        rob_size = self._rob_size
        lsq_size = self._lsq_size
        fq_size = self._fetch_queue_size
        mispredict_penalty = self._mispredict_penalty
        max_store_commit = self._max_store_commit
        block_scalar = self._block_scalar
        wide_bus = self._wide_bus
        vec_pool = self._vec_pool
        if engine is not None:
            vpcs = engine.vrmt.pcs
            engine_tick = engine.tick
            decode_load = engine.decode_load
            decode_alu = engine.decode_alu
            on_store_commit = engine.on_store_commit
            on_validation_commit = engine.on_validation_commit
            on_validation_failure = engine.on_validation_failure
            set_element_freed = engine.set_element_freed
            on_backward_branch_commit = engine.on_backward_branch_commit
        else:
            vpcs = None
        committed_count = self.committed_count
        now = 0
        while committed_count < total:
            # ---- begin cycle (inlined ports.begin_cycle) -----------------
            ports.cycles += 1
            ports._used_this_cycle = 0
            if engine is not None and engine.pending_alu:
                engine_tick(now)

            # ---- commit (see _commit) ------------------------------------
            if rob:
                t = rob[0].done_at
                if t is not None and t <= now:
                    committed = 0
                    stores_this_cycle = 0
                    while rob and committed < commit_width:
                        fl = rob[0]
                        t = fl.done_at
                        if t is None or t > now:
                            break
                        entry = fl.entry
                        kind = fl.kind
                        conflict = False
                        if kind == K_STORE:
                            if (
                                engine is not None
                                and stores_this_cycle >= max_store_commit
                            ):
                                break
                            if ports_available() == 0:
                                break
                            ready = data_access(fl.addr, now, is_write=True)
                            if ready is None:  # MSHR full
                                break
                            ports_take()
                            ports_open_write()
                            stats.write_accesses += 1
                            commit_store(fl.addr, entry.value)
                            stores_this_cycle += 1
                            stats.committed_stores += 1
                            if engine is not None:
                                conflict = on_store_commit(fl.addr, now)
                        rob.popleft()
                        if kind == K_LOAD or kind == K_STORE:
                            lsq = self.lsq
                            if lsq[0] is fl:
                                del lsq[0]
                            else:
                                lsq.remove(fl)
                        committed += 1
                        stats.committed += 1
                        if cfi_windows:
                            # ---- inlined _account_cfi (Fig 10) -----------
                            cseq = fl.seq
                            while cfi_windows and cseq > cfi_windows[0][0] + 100:
                                cfi_windows.popleft()
                            if cfi_windows:
                                is_validation = (
                                    kind >= K_VALIDATION and fl.counts_as_validation
                                )
                                for bseq, resolved in cfi_windows:
                                    if bseq < cseq <= bseq + 100:
                                        stats.cfi_window_instructions += 1
                                        if (
                                            is_validation
                                            and fl.vreg is not None
                                            and fl.velem >= 0
                                        ):
                                            stats.cfi_reused += 1
                                            rt = fl.vreg.r_time[fl.velem]
                                            if rt is not None and rt <= resolved:
                                                stats.cfi_precomputed += 1
                        if engine is not None:
                            if kind >= K_VALIDATION:
                                on_validation_commit(fl, now, ports)
                            rd = entry.rd
                            if rd > 0:
                                old = vec_map[rd]
                                if old is not None:
                                    set_element_freed(old[0], old[1], old[2], now)
                                if kind >= K_VALIDATION:
                                    vec_map[rd] = (fl.vreg, fl.vreg.gen, fl.velem)
                                else:
                                    vec_map[rd] = None
                            if is_backward[entry.pc] and bkinds[fl.seq]:
                                on_backward_branch_commit(entry.pc, now)
                            if kind >= K_VALIDATION:
                                # Commit is the last reference to a
                                # validation/trigger record (never in lsq,
                                # rename, or a waiters list): recycle it.
                                vec_pool.append(fl)
                        if conflict:
                            flush_from(fl.seq + 1, now + 1 + mispredict_penalty, now)
                            break
                    committed_count += committed

            # ---- execute / memory (see _execute) -------------------------
            if self.waiting or self._parked:
                issues_left = width
                parked = self._parked
                if parked and parked[0][0] <= now:
                    waiting = self.waiting
                    while parked and parked[0][0] <= now:
                        waiting.append(heappop(parked)[2])
                    waiting.sort(key=_SEQ_KEY)
                still_waiting: List[InFlight] = []
                keep = still_waiting.append
                flush_seq: Optional[int] = None
                rv: Optional[List] = None
                rf: Optional[List] = None
                ri: Optional[List] = None
                for fl in self.waiting:
                    dep = fl.dep1
                    if dep is not None:
                        if type(dep) is tuple:
                            t = dep[0].r_time[dep[1]]
                            if t is None:
                                keep(fl)
                                continue
                            if t > now:
                                heappush(parked, (t, fl.seq, fl))
                                continue
                        else:
                            t = dep.done_at
                            if t is None:
                                w = dep.waiters
                                if w is None:
                                    dep.waiters = [fl]
                                else:
                                    w.append(fl)
                                continue
                            if t > now:
                                heappush(parked, (t, fl.seq, fl))
                                continue
                        fl.dep1 = None
                    dep = fl.dep2
                    if dep is not None:
                        if type(dep) is tuple:
                            t = dep[0].r_time[dep[1]]
                            if t is None:
                                keep(fl)
                                continue
                            if t > now:
                                heappush(parked, (t, fl.seq, fl))
                                continue
                        else:
                            t = dep.done_at
                            if t is None:
                                w = dep.waiters
                                if w is None:
                                    dep.waiters = [fl]
                                else:
                                    w.append(fl)
                                continue
                            if t > now:
                                heappush(parked, (t, fl.seq, fl))
                                continue
                        fl.dep2 = None
                    if fl.static_ready > now:
                        keep(fl)
                        continue
                    kind = fl.kind
                    if kind == K_SCALAR:
                        if fl.cls == _FU_NONE:
                            if rf is None:
                                rf = [fl]
                            else:
                                rf.append(fl)
                        elif ri is None:
                            ri = [fl]
                        else:
                            ri.append(fl)
                    elif kind == K_LOAD:
                        if ri is None:
                            ri = [fl]
                        else:
                            ri.append(fl)
                    elif kind == K_STORE:
                        if rf is None:
                            rf = [fl]
                        else:
                            rf.append(fl)
                    elif rv is None:
                        rv = [fl]
                    else:
                        rv.append(fl)

                done1 = now + 1
                if rv is not None:
                    for fl in rv:
                        vreg = fl.vreg
                        if vreg.freed or vreg.defunct or fl.mismatch:
                            on_validation_failure(fl, now)
                            flush_seq = fl.seq
                            break
                        t = vreg.r_time[fl.velem]
                        if t is not None:
                            if t <= now:
                                fl.done_at = done1
                            else:
                                heappush(parked, (t, fl.seq, fl))
                        else:
                            keep(fl)
                if rf is not None:
                    for fl in rf:
                        if flush_seq is not None and fl.seq >= flush_seq:
                            break
                        fl.done_at = done1
                        if fl.kind != K_STORE:
                            if fl.waiters is not None:
                                # ---- inlined _wake_waiters ---------------
                                for c in fl.waiters:
                                    if not c.squashed:
                                        heappush(parked, (done1, c.seq, c))
                                fl.waiters = None
                            if fl.mispredicted and not fl.redirected:
                                resolve_mispredict(fl, now)
                if ri is not None:
                    by_cls = {}
                    for fl in ri:
                        if flush_seq is not None and fl.seq >= flush_seq:
                            break
                        if fl.kind == K_LOAD:
                            if issues_left <= 0:
                                keep(fl)
                                continue
                            # ---- inlined _try_load (see its docstring) ---
                            my_addr = fl.addr
                            my_seq = fl.seq
                            forwarding_store = None
                            res = None
                            for other in self.lsq:
                                if other.seq >= my_seq:
                                    break
                                if other.kind != K_STORE:
                                    continue
                                dep = other.base_dep
                                if dep is not None:
                                    if type(dep) is tuple:
                                        t = dep[0].r_time[dep[1]]
                                        if t is None:
                                            res = -1
                                            break
                                        if t + 1 > now:
                                            res = t + 1
                                            break
                                    else:
                                        t = dep.done_at
                                        if t is None:
                                            res = dep
                                            break
                                        if t + 1 > now:
                                            res = t + 1
                                            break
                                if other.addr == my_addr:
                                    forwarding_store = other
                            if res is None:
                                if forwarding_store is None:
                                    self.mem_queue.append(fl)
                                    issues_left -= 1
                                    continue
                                dep = forwarding_store.data_dep
                                if dep is not None:
                                    if type(dep) is tuple:
                                        t = dep[0].r_time[dep[1]]
                                        if t is None:
                                            res = -1
                                        elif t > now:
                                            res = t
                                    else:
                                        t = dep.done_at
                                        if t is None:
                                            res = dep
                                        elif t > now:
                                            res = t
                                if res is None:
                                    fl.done_at = done1
                                    if fl.waiters is not None:
                                        for c in fl.waiters:
                                            if not c.squashed:
                                                heappush(parked, (done1, c.seq, c))
                                        fl.waiters = None
                                    stats.forwarded_loads += 1
                                    issues_left -= 1
                                    continue
                            if type(res) is int:
                                if res < 0:
                                    keep(fl)
                                else:
                                    heappush(parked, (res, fl.seq, fl))
                            else:
                                w = res.waiters
                                if w is None:
                                    res.waiters = [fl]
                                else:
                                    w.append(fl)
                            continue
                        if issues_left <= 0:
                            keep(fl)
                            continue
                        # ---- inlined _acquire_fu -------------------------
                        cls = fl.cls
                        pool = fu_free.get(cls)
                        if pool is not None:
                            for ui, free_at in enumerate(pool):
                                if free_at <= now:
                                    pool[ui] = now + fu_busy[cls]
                                    break
                            else:
                                keep(fl)
                                continue
                        issues_left -= 1
                        group = by_cls.get(cls)
                        if group is None:
                            by_cls[cls] = [fl]
                        else:
                            group.append(fl)
                    for cls, group in by_cls.items():
                        done = now + group[0].lat
                        for fl in group:
                            fl.done_at = done
                            if fl.waiters is not None:
                                for c in fl.waiters:
                                    if not c.squashed:
                                        heappush(parked, (done, c.seq, c))
                                fl.waiters = None
                            if fl.mispredicted and not fl.redirected:
                                resolve_mispredict(fl, now)

                if flush_seq is not None and parked:
                    still_waiting.extend(e[2] for e in parked)
                    del parked[:]
                if len(still_waiting) > 1:
                    still_waiting.sort(key=_SEQ_KEY)
                self.waiting = still_waiting
                if flush_seq is not None:
                    flush_from(flush_seq, now + 1 + mispredict_penalty, now)

            # ---- memory (see _schedule_memory; runs after execute whether
            # or not execute had work this cycle — the if/elif pair in
            # step() reduces to exactly this because _execute ends with the
            # same check-and-call) --------------------------------------
            if self.mem_queue or (engine is not None and engine.pending_fetches):
                if wide_bus:
                    queue = self.mem_queue
                    if (
                        len(queue) == 1
                        and (engine is None or not engine.pending_fetches)
                        and ports_available() != 0
                    ):
                        # One pending scalar load and no vector fetches to
                        # group with it: serve its line directly, skipping
                        # the group-building call (the common IM-mode case;
                        # take_fetches on an empty queue has no effect, so
                        # skipping the call is exact in V mode too).
                        fl = queue[0]
                        addr = fl.addr
                        ready = data_access(addr - (addr % line_bytes), now)
                        if ready is not None:
                            ports_take()
                            txn = ports_open_read()
                            ports_add_useful(txn, 1)
                            stats.read_accesses += 1
                            stats.scalar_loads_to_memory += 1
                            fl.done_at = ready
                            if fl.waiters is not None:
                                parked = self._parked
                                for c in fl.waiters:
                                    if not c.squashed:
                                        heappush(parked, (ready, c.seq, c))
                                fl.waiters = None
                            self.mem_queue = []
                    else:
                        schedule_memory(now)
                elif self.mem_queue and ports_available() != 0:
                    # ---- inlined scalar-bus branch -----------------------
                    queue = self.mem_queue
                    nq = len(queue)
                    served = 0
                    while served < nq:
                        fl = queue[served]
                        if ports_available() == 0:
                            break
                        ready = data_access(fl.addr, now)
                        if ready is None:  # MSHR full; retry next cycle
                            break
                        ports_take()
                        txn = ports_open_read()
                        ports_add_useful(txn, 1)
                        stats.read_accesses += 1
                        stats.scalar_loads_to_memory += 1
                        fl.done_at = ready
                        if fl.waiters is not None:
                            parked = self._parked
                            for c in fl.waiters:
                                if not c.squashed:
                                    heappush(parked, (ready, c.seq, c))
                            fl.waiters = None
                        served += 1
                    if served:
                        self.mem_queue = queue[served:]

            # ---- dispatch (see _dispatch) --------------------------------
            if fetch_queue:
                dispatched = 0
                lsq = self.lsq
                waiting = self.waiting
                max_seq = self._max_dispatched_seq
                ready_at = now + 1
                rob_room = rob_size - len(rob)
                while fetch_queue and dispatched < width:
                    if rob_room <= 0:
                        break
                    packed = fetch_queue[0]
                    seq = packed >> 1
                    kind = kinds[seq]
                    if kind != K_SCALAR and len(lsq) >= lsq_size:
                        break
                    entry = entries[seq]
                    is_valu = valus[seq]
                    vec_probe = False
                    if is_valu and vpcs is not None:
                        if pcs_soa[seq] in vpcs:
                            vec_probe = True
                        else:
                            r = d1s[seq]
                            if r >= 0 and type(rename[r]) is tuple:
                                vec_probe = True
                            else:
                                r = d2s[seq]
                                if r >= 0 and type(rename[r]) is tuple:
                                    vec_probe = True
                    if (
                        block_scalar
                        and vec_probe
                        and blocked_on_scalar(entry, now)
                    ):
                        stats.scalar_operand_stall_cycles += 1
                        break
                    fetch_queue.popleft()
                    dispatched += 1
                    rob_room -= 1

                    first_time = seq > max_seq
                    if first_time:
                        max_seq = seq
                        self._max_dispatched_seq = seq

                    decision = None
                    if engine is not None:
                        if kind == K_LOAD:
                            decision = decode_load(entry, now, first_time)
                        elif vec_probe and entry.rd != NO_REG:
                            decision = decode_alu(entry, src_descs_of(entry), now)

                    if decision is not None and decision.kind is not DecodeKind.SCALAR:
                        vkind = (
                            K_VALIDATION
                            if decision.kind is DecodeKind.VALIDATION
                            else K_TRIGGER
                        )
                        if vec_pool:
                            fl = vec_pool.pop()
                            fl.reset(seq, entry, vkind, addrs[seq])
                        else:
                            fl = VecInFlight(seq, entry, vkind, addrs[seq])
                        fl.vreg = decision.reg
                        fl.velem = decision.elem
                        p = decision.pred_addr
                        fl.pred_addr = p
                        if p is not None and p != entry.addr:
                            fl.mismatch = True
                        fl.counts_as_validation = decision.counts_as_validation
                        fl.vrmt_rollback = decision.vrmt_rollback
                        fl.static_ready = ready_at
                        if kind == K_LOAD:
                            r = d1s[seq]
                            if r >= 0:
                                fl.dep1 = rename[r]
                        rd = rds[seq]
                        if rd > 0:
                            fl.saved_rd = rd
                            fl.saved_tok = rename[rd]
                            rename[rd] = (decision.reg, decision.elem)
                        rob.append(fl)
                        waiting.append(fl)
                        continue

                    if decision is not None and decision.vrmt_rollback is not None:
                        fl = VecInFlight(seq, entry, kind, addrs[seq])
                        fl.vrmt_rollback = decision.vrmt_rollback
                    else:
                        fl = InFlight(seq, entry, kind, addrs[seq])
                    if kind == K_LOAD:
                        r = d1s[seq]
                        dep = rename[r] if r >= 0 else None
                        fl.base_dep = dep
                        fl.dep1 = dep
                        rd = rds[seq]
                        if rd > 0:
                            fl.saved_rd = rd
                            fl.saved_tok = rename[rd]
                            rename[rd] = fl
                        lsq.append(fl)
                    elif kind == K_STORE:
                        r = d1s[seq]
                        base = rename[r] if r >= 0 else None
                        r = d2s[seq]
                        data = rename[r] if r >= 0 else None
                        fl.base_dep = base
                        fl.data_dep = data
                        fl.dep1 = base
                        fl.dep2 = data
                        lsq.append(fl)
                    else:
                        fl.cls = clss[seq]
                        fl.lat = lats[seq]
                        r = d1s[seq]
                        if r >= 0:
                            fl.dep1 = rename[r]
                        r = d2s[seq]
                        if r >= 0:
                            fl.dep2 = rename[r]
                        rd = rds[seq]
                        if rd > 0:
                            fl.saved_rd = rd
                            fl.saved_tok = rename[rd]
                            rename[rd] = fl
                    fl.static_ready = ready_at
                    if packed & 1:
                        fl.mispredicted = True
                    rob.append(fl)
                    waiting.append(fl)
                stats.fetched += dispatched

            # ---- fetch ---------------------------------------------------
            # fetch_into's own early-outs, checked here to skip the call
            # during mispredict bubbles and after the trace runs dry.
            if (
                fq_size > len(fetch_queue)
                and not fetch_unit._blocked
                and now >= fetch_unit._stalled_until
            ):
                fetch_into(now, fetch_queue, fq_size - len(fetch_queue))

            now += 1
            if now > safety:
                self.committed_count = committed_count
                raise RuntimeError(
                    f"simulation wedged: {committed_count}/{total} "
                    f"committed after {now} cycles"
                )
        self.committed_count = committed_count
        return now

    def run(self) -> SimStats:
        """Simulate until the whole trace has committed; returns stats."""
        total = len(self.trace.entries)
        stats = self.stats
        if total == 0:
            return stats
        now = 0
        safety = 2000 + 600 * total
        obs = self.observer
        observed = obs is not None and (
            obs.metrics is not None or obs.profiler is not None
        )
        # The loop allocates heavily (InFlight, dep tuples) but creates no
        # reference cycles worth collecting mid-run; pausing the cyclic GC
        # saves its generation-0 scans.  Restore the caller's setting after.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if observed:
                now = self._run_observed(total, safety)
            elif not _STAGE_METHODS.isdisjoint(self.__dict__):
                # A stage method is overridden on the *instance* (test
                # spies, ad-hoc instrumentation).  The fused loop inlines
                # the class's stage bodies and would silently bypass the
                # override, so patched machines take the canonical
                # step() loop — bit-identical by the loop-parity test.
                now = self._run_stepped(total, safety)
            else:
                now = self._run_fast(total, safety)
        finally:
            if gc_was_enabled:
                gc.enable()
        stats.cycles = now
        if self.engine is not None:
            self.engine.finalize(now)
        stats.usefulness = self.ports.usefulness_histogram()
        stats.port_occupancy = self.ports.occupancy
        if observed and obs.metrics is not None:
            self._record_metrics(obs.metrics)
        return stats

    def _run_stepped(self, total: int, safety: int) -> int:
        """Canonical per-stage loop, one :meth:`step` call per cycle.

        Used when a stage method has been overridden on the instance so
        the override is actually consulted every cycle.
        """
        step = self.step
        now = 0
        while self.committed_count < total:
            step(now)
            now += 1
            if now > safety:
                raise RuntimeError(
                    f"simulation wedged: {self.committed_count}/{total} "
                    f"committed after {now} cycles"
                )
        return now

    def _run_observed(self, total: int, safety: int) -> int:
        """The run loop for metrics-sampling and/or stage-profiled runs.

        Split out of :meth:`run` so unobserved runs keep the bare loop;
        results are bit-identical either way — these hooks only read
        clocks and counters, never machine state.
        """
        obs = self.observer
        profiler = obs.profiler
        metrics = obs.metrics
        series = metrics.series("ports.occupancy") if metrics is not None else None
        if metrics is not None:
            # Arm the execute-stage batch-size histogram (one observation
            # per non-empty ready group per cycle).
            self._batch_hist = metrics.histogram("kernel.batch_size").observe
        ports = self.ports
        n_ports = ports.n_ports
        sample_mask = 0x0FFF  # one occupancy sample every 4096 cycles
        last_busy = 0
        step = self.step if profiler is None else self._step_profiled
        now = 0
        wall_start = observe_profile.perf_counter() if profiler is not None else 0.0
        while self.committed_count < total:
            step(now)
            now += 1
            if series is not None and not (now & sample_mask):
                busy = ports.busy_port_cycles
                series.append(now, (busy - last_busy) / ((sample_mask + 1) * n_ports))
                last_busy = busy
            if now > safety:
                raise RuntimeError(
                    f"simulation wedged: {self.committed_count}/{total} "
                    f"committed after {now} cycles"
                )
        if profiler is not None:
            profiler.wall_seconds += observe_profile.perf_counter() - wall_start
        return now

    def _step_profiled(self, now: int) -> None:
        """:meth:`step` with wall-clock attribution around each stage.

        The stage guards MUST stay in lock-step with :meth:`step` — the
        profiled run stays bit-identical because the hooks only read the
        clock.  Port scheduling reached from inside the execute stage is
        attributed to ``memory`` by :meth:`_execute` itself (via
        ``self._profiler``) and subtracted from this frame's ``execute``
        share, so the two stages always partition the real wall time.
        """
        prof = self.observer.profiler
        self._profiler = prof
        clock = observe_profile.perf_counter
        ports = self.ports
        ports.cycles += 1
        ports._used_this_cycle = 0
        engine = self.engine
        if engine is not None and engine.pending_alu:
            t0 = clock()
            engine.tick(now)
            prof.account("execute", clock() - t0, active=False)
        rob = self.rob
        if rob:
            t = rob[0].done_at
            if t is not None and t <= now:
                t0 = clock()
                self._commit(now)
                prof.account("commit", clock() - t0)
        if self.waiting or self._parked:
            self._mem_seconds = 0.0
            t0 = clock()
            self._execute(now)
            prof.account("execute", clock() - t0 - self._mem_seconds)
        elif self.mem_queue or (engine is not None and engine.pending_fetches):
            t0 = clock()
            self._schedule_memory(now)
            prof.account("memory", clock() - t0)
        if self.fetch_queue:
            t0 = clock()
            self._dispatch(now)
            prof.account("dispatch", clock() - t0)
        fetch_queue = self.fetch_queue
        room = self._fetch_queue_size - len(fetch_queue)
        if room > 0:
            t0 = clock()
            fetched = self.fetch_unit.fetch_into(now, fetch_queue, room)
            prof.account("fetch", clock() - t0, active=bool(fetched))
        prof.tick()

    def _record_metrics(self, registry) -> None:
        """End-of-run machine-level gauges (cache and port accounting).

        Whole-run ``sim.*`` counters are recorded by the experiment layer
        (:func:`repro.observe.metrics.record_sim_stats`) so sampled-mode
        windows, which each run their own machine against a shared
        observer, do not double-count.  Gauges are safe either way: the
        last window's write wins, and the hierarchy's cumulative stats
        make that the whole-run total.
        """
        self.hierarchy.record_metrics(registry)
        ports = self.ports
        registry.gauge("ports.read_transactions").set(ports.read_transactions)
        registry.gauge("ports.write_transactions").set(ports.write_transactions)
        registry.gauge("ports.busy_port_cycles").set(ports.busy_port_cycles)
        registry.gauge("ports.occupancy.final").set(ports.occupancy)


def simulate(config: MachineConfig, trace: Trace, observer=None) -> SimStats:
    """Run ``trace`` through a machine built from ``config`` (convenience)."""
    return Machine(config, trace, observer=observer).run()
