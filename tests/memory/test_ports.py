"""Port arbitration, occupancy and Fig-13 usefulness accounting."""

import pytest

from repro.memory import DataPorts, WORDS_PER_LINE


def test_words_per_line_matches_paper():
    assert WORDS_PER_LINE == 4  # 32-byte lines of 8-byte words


def test_arbitration():
    ports = DataPorts(2, wide=True)
    ports.begin_cycle()
    assert ports.available() == 2
    ports.take()
    assert ports.available() == 1
    ports.take()
    assert ports.available() == 0
    with pytest.raises(RuntimeError):
        ports.take()


def test_ports_free_each_cycle():
    ports = DataPorts(1, wide=False)
    ports.begin_cycle()
    ports.take()
    ports.begin_cycle()
    assert ports.available() == 1


def test_occupancy():
    ports = DataPorts(2, wide=True)
    for _ in range(4):
        ports.begin_cycle()
        ports.take()
    assert ports.occupancy == pytest.approx(0.5)


def test_zero_ports_rejected():
    with pytest.raises(ValueError):
        DataPorts(0, wide=False)


def test_usefulness_scalar_words():
    ports = DataPorts(1, wide=True)
    ports.begin_cycle()
    txn = ports.open_read()
    ports.add_useful(txn, 3)
    hist = ports.usefulness_histogram()
    assert hist["3"] == 1.0


def test_usefulness_unused_speculative():
    ports = DataPorts(1, wide=True)
    ports.begin_cycle()
    txn = ports.open_read()
    ports.add_speculative(txn, 2)
    hist = ports.usefulness_histogram()
    assert hist["unused"] == 1.0


def test_element_validation_migrates_words():
    ports = DataPorts(1, wide=True)
    txn = ports.open_read()
    ports.add_speculative(txn, 2)
    ports.element_validated(txn)
    hist = ports.usefulness_histogram()
    assert hist["1"] == 1.0  # one word became useful
    ports.element_validated(txn)
    assert ports.usefulness_histogram()["2"] == 1.0


def test_extra_validations_are_capped():
    ports = DataPorts(1, wide=True)
    txn = ports.open_read()
    ports.add_speculative(txn, 1)
    ports.element_validated(txn)
    ports.element_validated(txn)  # no speculative words left
    assert ports.usefulness_histogram()["1"] == 1.0


def test_word_count_capped_at_line_size():
    ports = DataPorts(1, wide=True)
    txn = ports.open_read()
    ports.add_useful(txn, 3)
    ports.add_speculative(txn, 3)  # 6 > 4: clamp
    hist = ports.usefulness_histogram()
    assert hist["3"] == 1.0  # useful words kept, speculative clamped


def test_histogram_fractions_sum_to_one():
    ports = DataPorts(1, wide=True)
    for words in (1, 2, 4):
        txn = ports.open_read()
        ports.add_useful(txn, words)
    txn = ports.open_read()
    ports.add_speculative(txn, 1)
    hist = ports.usefulness_histogram()
    assert sum(hist.values()) == pytest.approx(1.0)


def test_empty_histogram_is_zeroes():
    hist = DataPorts(1, wide=True).usefulness_histogram()
    assert all(v == 0.0 for v in hist.values())


def test_write_transactions_counted_separately():
    ports = DataPorts(1, wide=True)
    ports.open_write()
    assert ports.write_transactions == 1
    assert ports.read_transactions == 0
