"""The :class:`Instruction` record and its classification helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .opcodes import (
    BRANCH_OPS,
    CONTROL_OPS,
    FP_DEST_OPS,
    FuClass,
    LOAD_OPS,
    MEM_OPS,
    Opcode,
    STORE_OPS,
    fu_class_of,
)
from .registers import NO_REG, reg_name


@dataclass(slots=True)
class Instruction:
    """One static instruction.

    Register fields use the flat encoding of :mod:`repro.isa.registers`
    (``NO_REG`` when absent).  Control-flow targets are held symbolically in
    ``label`` until :meth:`repro.isa.program.Program.finalize` resolves them
    into ``target`` (an instruction index — the simulator's PCs are
    instruction indices, not byte addresses).

    Field conventions by opcode family:

    * int/fp ALU: ``rd``, ``rs1`` (and ``rs2`` or ``imm``)
    * loads: ``rd``, ``rs1`` = base, ``imm`` = byte offset
    * stores: ``rs2`` = value source, ``rs1`` = base, ``imm`` = byte offset
    * branches: ``rs1``, ``rs2`` compared; ``label``/``target``
    * ``JR``: ``rs1`` holds the target instruction index
    """

    op: Opcode
    rd: int = NO_REG
    rs1: int = NO_REG
    rs2: int = NO_REG
    imm: int = 0
    label: Optional[str] = None
    target: int = -1

    # -- classification ----------------------------------------------------

    @property
    def is_load(self) -> bool:
        """True for ``LD``/``FLD``."""
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        """True for ``ST``/``FST``."""
        return self.op in STORE_OPS

    @property
    def is_mem(self) -> bool:
        """True for any memory instruction."""
        return self.op in MEM_OPS

    @property
    def is_branch(self) -> bool:
        """True for conditional branches only."""
        return self.op in BRANCH_OPS

    @property
    def is_control(self) -> bool:
        """True for branches and jumps."""
        return self.op in CONTROL_OPS

    @property
    def is_fp_dest(self) -> bool:
        """True if the destination register is floating point."""
        return self.op in FP_DEST_OPS

    @property
    def writes_reg(self) -> bool:
        """True if the instruction produces a register result."""
        return self.rd != NO_REG

    @property
    def fu_class(self) -> FuClass:
        """Functional-unit class executing this instruction."""
        return fu_class_of(self.op)

    def sources(self) -> tuple:
        """Encoded ids of the source registers actually read (no NO_REG)."""
        srcs = []
        if self.rs1 != NO_REG:
            srcs.append(self.rs1)
        if self.rs2 != NO_REG:
            srcs.append(self.rs2)
        return tuple(srcs)

    # -- display ------------------------------------------------------------

    def __str__(self) -> str:
        name = self.op.name.lower()
        if self.is_load:
            return f"{name} {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
        if self.is_store:
            return f"{name} {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        if self.is_branch:
            where = self.label if self.label is not None else f"@{self.target}"
            return f"{name} {reg_name(self.rs1)}, {reg_name(self.rs2)}, {where}"
        if self.op in (Opcode.J, Opcode.JAL):
            where = self.label if self.label is not None else f"@{self.target}"
            if self.op is Opcode.JAL:
                return f"{name} {reg_name(self.rd)}, {where}"
            return f"{name} {where}"
        if self.op is Opcode.JR:
            return f"{name} {reg_name(self.rs1)}"
        if self.op in (Opcode.NOP, Opcode.HALT):
            return name
        parts = [reg_name(self.rd)]
        if self.rs1 != NO_REG:
            parts.append(reg_name(self.rs1))
        if self.rs2 != NO_REG:
            parts.append(reg_name(self.rs2))
        elif self.op.name.endswith("I") or self.op is Opcode.LI:
            parts.append(str(self.imm))
        return f"{name} " + ", ".join(parts)
