"""Figure 11: IPC over the full machine grid.

Paper: for each width (4/8) and port count (1/2/4), three machines —
scalar buses (xpnoIM), wide buses (xpIM), wide buses + dynamic
vectorization (xpV).  Wide buses lift port-bound configurations strongly
(8-way 1-port: 1.77 -> 2.16 in the paper) and V adds on top, most for
strided codes.
"""

from repro.experiments import fig11_ipc

from conftest import SCALE, emit


def test_fig11_ipc_4way(benchmark):
    rows = benchmark.pedantic(fig11_ipc, args=(4, SCALE), rounds=1, iterations=1)
    emit("fig11_4way", "Figure 11 (bottom): IPC, 4-way processor", rows)


def test_fig11_ipc_8way(benchmark):
    rows = benchmark.pedantic(fig11_ipc, args=(8, SCALE), rounds=1, iterations=1)
    emit("fig11_8way", "Figure 11 (top): IPC, 8-way processor", rows)
