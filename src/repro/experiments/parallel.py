"""Fault-tolerant process-pool fan-out for the experiment grid.

The figure grid is embarrassingly parallel: every (benchmark, width,
ports, mode) point is one independent simulation of its own
:class:`~repro.pipeline.machine.Machine` on its own trace.  This module
fans a batch of grid points out over a
:class:`concurrent.futures.ProcessPoolExecutor` and merges the results
back into the in-process memo of :mod:`repro.experiments.runner`, so the
figure functions afterwards run entirely from memory.

Layering per point, cheapest first:

1. the parent's in-process memo (free);
2. the persistent disk cache — checked *in the parent* so a warm cache
   never even spawns the pool;
3. a pool worker, which re-checks the disk cache in its own process
   (another worker may race it harmlessly: writes are atomic and
   byte-identical) and simulates on miss.

Determinism is the contract: a grid point's result is a pure function of
its coordinates and the simulator sources, so serial, parallel and
cache-hit paths produce identical :class:`~repro.pipeline.stats.SimStats`
— the equivalence tests in ``tests/experiments/test_parallel.py`` pin
this.

Fault tolerance is the other contract: one bad point must never cost the
rest of the grid.  Every point is submitted as its own future and driven
under a :class:`FaultPolicy`:

* a worker **exception** charges the point one attempt and retries it
  with capped exponential backoff, up to ``max_retries``; a point that
  keeps failing is **quarantined** into ``GridReport.failed`` while the
  rest of the grid completes;
* a **hung** task is detected when no future completes within
  ``task_timeout`` seconds: queued futures are requeued uncharged, the
  stuck ones are charged a ``timeout`` attempt, and the pool (whose
  workers may be wedged) is killed and respawned;
* a **broken pool** (a worker died — ``BrokenProcessPool``) salvages
  every already-completed result and respawns the pool for the remainder;
  after two consecutive breaks the fabric switches to *isolation mode* —
  one point per single-worker pool — so the crashing point indicts only
  itself, is retried/quarantined like any other failure, and pooled mode
  resumes once it is identified;
* if pools are **unavailable** entirely (no ``sem_open``/fork), execution
  degrades to in-process serial with the same retry/quarantine handling
  (``GridReport.degraded_serial``).

Failures are reported per point (:class:`TaskFailure`: kind, error,
attempt count) through :class:`GridReport`, surfaced as
``grid.task_retries`` / ``grid.tasks_failed`` / ``grid.pool_restarts``
metrics when a registry is attached, and propagated by the CLI as a
nonzero exit.  The deterministic fault injector
(:mod:`repro.verify.faults`) drives every one of these paths in
``tests/experiments/test_fault_tolerance.py``.

Worker count: the ``jobs`` argument, else ``$REPRO_JOBS``, else
``os.cpu_count()``.  ``jobs=1`` runs serially in-process (no pool, same
results).  Zero or negative worker counts are rejected, not clamped.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from ..observe import MetricsRegistry, Observer, record_sim_stats
from ..pipeline.stats import SimStats
from ..schemas import error_dict
from . import diskcache, runner

#: default attempt budget beyond the first try (see FaultPolicy).
DEFAULT_MAX_RETRIES = 2

#: consecutive pool breaks before switching to isolation mode.
_ISOLATE_AFTER_BREAKS = 2


class GridPoint(NamedTuple):
    """One coordinate of the experiment grid (hashable, pool-picklable).

    ``sampling`` is None for an exact run or a ``(window, interval)``
    tuple for a sampled one — the same tail coordinate
    :data:`runner.PointKey` carries.
    """

    name: str
    width: int = 4
    ports: int = 1
    mode: str = "V"
    scale: int = runner.EXPERIMENT_SCALE
    block_on_scalar_operand: bool = True
    sampling: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class FaultPolicy:
    """How the grid treats a task that fails, hangs or kills its worker.

    ``task_timeout`` is a *stall* timeout: it fires when no task in the
    batch completes for that many seconds, which bounds a hung simulation
    without per-task clocks (a busy healthy grid keeps resetting it).
    ``max_retries`` is the attempt budget *beyond* the first try; retries
    back off exponentially from ``backoff_base`` capped at
    ``backoff_cap`` seconds.
    """

    task_timeout: Optional[float] = None
    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))

    @classmethod
    def resolve(
        cls,
        task_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> "FaultPolicy":
        """Policy from arguments, ``$REPRO_TASK_TIMEOUT`` / ``$REPRO_MAX_RETRIES``,
        or the defaults; rejects nonsensical values loudly."""
        if task_timeout is None:
            env = os.environ.get("REPRO_TASK_TIMEOUT")
            if env:
                try:
                    task_timeout = float(env)
                except ValueError:
                    raise ValueError(
                        f"REPRO_TASK_TIMEOUT must be a number, got {env!r}"
                    ) from None
        if max_retries is None:
            env = os.environ.get("REPRO_MAX_RETRIES")
            if env:
                try:
                    max_retries = int(env)
                except ValueError:
                    raise ValueError(
                        f"REPRO_MAX_RETRIES must be an integer, got {env!r}"
                    ) from None
        if max_retries is None:
            max_retries = DEFAULT_MAX_RETRIES
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task timeout must be positive, got {task_timeout}")
        if max_retries < 0:
            raise ValueError(f"max retries must be >= 0, got {max_retries}")
        return cls(task_timeout=task_timeout, max_retries=max_retries)


@dataclass
class TaskFailure:
    """One grid point that could not be computed within its retry budget."""

    point: GridPoint
    #: "error" | "timeout" | "crash" for in-host failures; distributed
    #: backends add the node-level kinds "node.lost" (the point's host
    #: peers kept dying under it) and "node.unavailable" (every node
    #: slot quarantined while the point was still queued).
    kind: str
    error: str      #: last failure's description
    attempts: int   #: attempts charged before quarantine

    def describe(self) -> str:
        p = self.point
        coord = f"{p.name} {p.width}w {p.ports}p {p.mode}"
        return f"{coord}: {self.kind} after {self.attempts} attempt(s) — {self.error}"

    def to_dict(self) -> Dict:
        """The ``repro.error/v1`` object for this quarantined point.

        ``retriable`` is False: the retry budget is already spent, so an
        identical request will fail the same way.  The attempt count
        rides as a kind-specific extra.
        """
        return error_dict(
            self.kind,
            self.error,
            retriable=False,
            point={
                "benchmark": self.point.name,
                "width": self.point.width,
                "ports": self.point.ports,
                "mode": self.point.mode,
                "scale": self.point.scale,
                "block_on_scalar_operand": self.point.block_on_scalar_operand,
                "sampling": list(self.point.sampling) if self.point.sampling else None,
            },
            attempts=self.attempts,
        )


@dataclass
class GridReport:
    """Where each point of one :func:`run_grid` batch came from — and
    which points failed, were retried, or broke the pool."""

    requested: int = 0
    unique: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    simulated: int = 0
    jobs: int = 1
    retries: int = 0
    pool_restarts: int = 0
    degraded_serial: bool = False
    #: a cooperative cancel signal stopped the batch early; the results
    #: gathered before the stop are still merged (and cached).
    cancelled: bool = False
    failed: List[TaskFailure] = field(default_factory=list)
    #: distributed-backend accounting (all zero/empty on the pool path).
    nodes_lost: int = 0
    points_reassigned: int = 0
    resume_skipped: int = 0
    nodes: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every requested point produced a result."""
        return not self.failed

    def summary(self) -> str:
        text = (
            f"grid: {self.requested} points ({self.unique} unique) — "
            f"{self.simulated} simulated, {self.disk_hits} disk-cache hits, "
            f"{self.memo_hits} memo hits [jobs={self.jobs}]"
        )
        if self.retries:
            text += f", {self.retries} retries"
        if self.pool_restarts:
            text += f", {self.pool_restarts} pool restarts"
        if self.nodes_lost:
            text += f", {self.nodes_lost} nodes lost"
        if self.points_reassigned:
            text += f", {self.points_reassigned} points reassigned"
        if self.resume_skipped:
            text += f", {self.resume_skipped} resumed from cache"
        if self.degraded_serial:
            text += ", degraded to serial"
        if self.cancelled:
            text += ", CANCELLED early"
        if self.failed:
            text += f" — {len(self.failed)} FAILED"
        return text


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count from the argument, ``$REPRO_JOBS``, or the CPU count.

    A zero or negative count — argument or environment — is a usage
    error and raises ``ValueError`` instead of being silently clamped.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from None
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    if jobs is None:
        jobs = os.cpu_count() or 1
    return jobs


def _worker_warmup(benchmarks: Tuple[str, ...], scale: int):
    """Pool warm-up task: pay the import + trace-load cost up front.

    Importing the simulator packages and materializing the functional
    traces (disk-cached, predecoded) dominates a cold worker's first
    task; running this once per worker moves that cost to service
    start-up so request latency measures simulation, not imports.
    Returns the worker pid so callers can count distinct warmed workers.
    """
    from ..workloads.spec95 import cached_trace

    for name in benchmarks:
        cached_trace(name, scale)
    return os.getpid()


class WorkerPool:
    """A warm, reusable :class:`ProcessPoolExecutor` shared across grids.

    Per-call pools (the default :func:`run_grid` path) pay process
    spawn + interpreter import for every batch; a long-running caller —
    the service daemon above all — instead keeps one ``WorkerPool`` and
    passes it to every :func:`run_grid`, which then draws its executor
    from here and *returns it warm* instead of shutting it down.

    Fault semantics are unchanged: when a batch marks the pool broken
    (worker death, stall past ``task_timeout``) the driver calls
    :meth:`discard`, which terminates the wreck and lets the next
    :meth:`executor` call respawn lazily (counted in ``restarts``);
    retry/quarantine/isolation logic in :func:`_execute_pool` runs
    exactly as for owned pools — isolation mode always builds its own
    throwaway single-worker pools so a crasher can never poison the
    shared one while being indicted.

    Thread-safe: concurrent grids may share one pool (submissions
    interleave; each driver waits only on its own futures).  A driver
    that discards the shared pool mid-flight merely forces the others
    onto the respawn path — their futures surface ``BrokenExecutor`` and
    are retried under the normal policy.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        #: worker count, resolved once (argument / $REPRO_JOBS / CPUs).
        self.jobs = resolve_jobs(jobs)
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        #: pools discarded after breaking (monitoring surface).
        self.restarts = 0
        self._spawned = 0

    def executor(self) -> ProcessPoolExecutor:
        """The live shared pool, spawning it on first use / after a discard."""
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
                self._spawned += 1
                if self._spawned > 1:
                    self.restarts += 1
            return self._pool

    def discard(self, pool: ProcessPoolExecutor) -> None:
        """Drop (and terminate) a broken executor obtained from here.

        Identity-checked so two drivers hitting the same break only
        discard once, and a driver holding a stale handle cannot kill a
        healthy respawn.
        """
        with self._lock:
            mine = pool is self._pool
            if mine:
                self._pool = None
        if mine:
            _abort_pool(pool)

    def warm(
        self,
        benchmarks: Iterable[str] = (),
        scale: int = runner.EXPERIMENT_SCALE,
        timeout: Optional[float] = 60.0,
    ) -> int:
        """Spin every worker up now (imports + optional trace preload).

        Submits one warm-up task per worker slot and waits up to
        ``timeout`` seconds; returns how many distinct workers reported
        in (0 when pools are unavailable — callers degrade gracefully).
        """
        names = tuple(benchmarks)
        try:
            pool = self.executor()
            futures = [
                pool.submit(_worker_warmup, names, scale) for _ in range(self.jobs)
            ]
            done, _ = wait(futures, timeout=timeout)
            return len({future.result() for future in done})
        except Exception:
            return 0

    def shutdown(self) -> None:
        """Tear the shared pool down (idempotent; a later use respawns)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def _worker_run_point(key: GridPoint, want_metrics: bool = False):
    """Pool entry point: compute one grid point in a worker process.

    Returns ``(key, stats-as-dict, simulated_flag, metrics-payload)``;
    the dict forms keep the pickled payload decoupled from object
    identity.  ``metrics-payload`` is None unless ``want_metrics`` — it
    then carries the point's full serialized registry (``sim.*``
    counters plus machine-level extras) ready to merge parent-side.
    """
    before = runner.simulations_run()
    observer = Observer(metrics=MetricsRegistry()) if want_metrics else None
    stats = runner.compute_point(tuple(key), observer)
    simulated = runner.simulations_run() > before
    metrics = observer.metrics.to_dict() if want_metrics else None
    return key, diskcache.stats_to_dict(stats), simulated, metrics


def run_grid(
    points: Iterable[GridPoint],
    jobs: Optional[int] = None,
    report: Optional[GridReport] = None,
    metrics: Optional[MetricsRegistry] = None,
    task_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
    backend=None,
    on_result=None,
    cancel=None,
) -> Dict[GridPoint, SimStats]:
    """Compute every grid point, fanning misses out over a process pool.

    Returns ``{point: master SimStats}`` — treat the values as immutable
    (they are the memo's master copies; :func:`runner.run_point` hands out
    private copies and becomes a memo hit for every point computed here).
    ``report``, when given, is filled with hit/miss accounting.

    ``metrics``, when given, aggregates every point's metrics into one
    registry: pool workers ship their per-point registries back across
    the pickle boundary, cached points replay their persisted payloads,
    and memo hits synthesize ``sim.*`` from the cached stats — so the
    counters sum over the whole grid regardless of where each point came
    from.

    Failures do not propagate: a point that keeps failing (or hanging,
    under ``task_timeout``) is quarantined into ``report.failed`` after
    ``max_retries`` retries and simply absent from the returned dict —
    every other point completes and is salvaged even when a worker
    crash breaks the pool mid-batch.  See :class:`FaultPolicy` for the
    knob semantics (also reachable as ``$REPRO_TASK_TIMEOUT`` /
    ``$REPRO_MAX_RETRIES`` and the CLI's ``--task-timeout`` /
    ``--max-retries``).

    ``pool``, when given, is a shared :class:`WorkerPool` drawn from
    instead of spawning (and tearing down) a per-call executor; its
    worker count also overrides ``jobs``.  With a pool attached, even a
    *single* cold point runs in a worker process — the isolation the
    service daemon relies on so a poisoned request can never take down
    the parent — where the default path would run it serially in-process.

    ``backend`` swaps the execution layer for cache-cold points
    entirely: an :class:`repro.experiments.distributed.ExecutorBackend`
    instance (caller-owned — survives across calls), or a backend name
    (``"local"`` / ``"subprocess"``, resolved and closed per call).
    The memo/disk layers above are backend-agnostic, so a warm cache
    never engages the backend at all.

    ``on_result``, when given, is called as ``on_result(point,
    stats_dict)`` for every point **as it completes** — cache hits fire
    immediately, computed points fire from inside the execution engine —
    so a caller (the service's per-point result stream) sees a large
    grid incrementally.  Observer exceptions are swallowed: a broken
    stream must never fail the grid.

    ``cancel``, when given, is a cooperative stop signal (anything with
    ``is_set()``, e.g. ``threading.Event``): once set, no further points
    are dispatched, queued pool futures are cancelled, distributed peers
    are torn down, and the batch returns early with
    ``report.cancelled = True``.  Points that completed before the stop
    are merged and cached as usual — a later identical grid reuses them.
    """
    points = list(points)
    if report is None:
        report = GridReport()
    report.requested = len(points)
    backend_obj = owned_backend = None
    if backend is not None:
        from .distributed.backends import ExecutorBackend, resolve_backend

        if isinstance(backend, ExecutorBackend):
            backend_obj = backend
        else:
            backend_obj = owned_backend = resolve_backend(
                backend, jobs=jobs, pool=pool
            )
        jobs = backend_obj.jobs
    elif pool is not None:
        jobs = pool.jobs
    else:
        jobs = resolve_jobs(jobs)
    report.jobs = jobs
    policy = FaultPolicy.resolve(task_timeout, max_retries)

    ordered: List[GridPoint] = []
    seen = set()
    for point in points:
        point = GridPoint(*point)
        if point not in seen:
            seen.add(point)
            ordered.append(point)
    report.unique = len(ordered)

    want_metrics = metrics is not None
    results: Dict[GridPoint, SimStats] = {}
    todo: List[GridPoint] = []
    for point in ordered:
        key = tuple(point)
        if runner.memo_contains(key):
            results[point] = runner.memo_get(key)
            report.memo_hits += 1
            if want_metrics:
                record_sim_stats(metrics, results[point])
            if on_result is not None:
                _notify_result(
                    on_result, point, diskcache.stats_to_dict(results[point])
                )
        else:
            todo.append(point)

    # Parent-side disk probe: a fully warm cache never spawns the pool.
    still_cold: List[GridPoint] = []
    for point in todo:
        config = runner.point_config(
            point.width, point.ports, point.mode, point.block_on_scalar_operand
        )
        sampling = runner.sampling_from_key(point.sampling)
        entry = diskcache.load_stats_entry(
            diskcache.stats_key(
                point.name,
                point.scale,
                0,
                config,
                sampling.fingerprint() if sampling is not None else None,
            )
        )
        if entry is not None:
            cached, persisted = entry
            runner.prime_memo(tuple(point), cached)
            results[point] = cached
            report.disk_hits += 1
            if want_metrics:
                if persisted:
                    metrics.merge(persisted)
                record_sim_stats(metrics, cached)
            if on_result is not None:
                _notify_result(on_result, point, diskcache.stats_to_dict(cached))
        else:
            still_cold.append(point)

    if cancel is not None and cancel.is_set():
        report.cancelled = True
        still_cold = []

    if still_cold:
        try:
            if backend_obj is not None:
                extra = {}
                if on_result is not None:
                    extra["on_result"] = on_result
                if cancel is not None:
                    extra["cancel"] = cancel
                computed = backend_obj.execute(
                    still_cold,
                    policy=policy,
                    report=report,
                    want_metrics=want_metrics,
                    **extra,
                )
            else:
                computed = _execute(
                    still_cold, jobs, want_metrics, policy, report, pool,
                    on_result=on_result, cancel=cancel,
                )
        finally:
            if owned_backend is not None:
                owned_backend.close()
        for point, payload, simulated, point_metrics in computed:
            stats = diskcache.stats_from_dict(payload)
            runner.prime_memo(tuple(point), stats)
            results[point] = runner.memo_get(tuple(point))
            if simulated:
                report.simulated += 1
            else:
                report.disk_hits += 1
            if want_metrics and point_metrics:
                # The worker-side registry already includes the sim.* shim.
                metrics.merge(point_metrics)

    if owned_backend is not None:
        owned_backend.close()  # idempotent; also closed on the error path

    if want_metrics:
        # Fabric-health counters: only materialized when nonzero, so a
        # clean run's registry stays bit-identical to the pre-fault era.
        if report.retries:
            metrics.counter("grid.task_retries").inc(report.retries)
        if report.failed:
            metrics.counter("grid.tasks_failed").inc(len(report.failed))
        if report.pool_restarts:
            metrics.counter("grid.pool_restarts").inc(report.pool_restarts)
        if report.nodes_lost:
            metrics.counter("dist.nodes_lost").inc(report.nodes_lost)
        if report.points_reassigned:
            metrics.counter("dist.points_reassigned").inc(report.points_reassigned)

    return results


# ---------------------------------------------------------------------------
# The fault-isolating execution engine
# ---------------------------------------------------------------------------


class _PoolUnavailable(Exception):
    """Process pools cannot be created in this environment at all."""


#: how often a cancellable pool wait wakes up to poll the stop signal.
_CANCEL_TICK = 0.2


def _notify_result(on_result, point, payload) -> None:
    """Deliver one completed point to the streaming observer (if any).

    Observer exceptions are swallowed: a broken result stream must never
    fail — or even retry — the grid computation it is watching.
    """
    if on_result is None:
        return
    try:
        on_result(point, payload)
    except Exception:
        pass


def _execute(
    points: List[GridPoint],
    jobs: int,
    want_metrics: bool,
    policy: FaultPolicy,
    report: GridReport,
    pool: Optional[WorkerPool] = None,
    on_result=None,
    cancel=None,
) -> List[tuple]:
    """Compute ``points`` with per-task isolation; failures land in
    ``report.failed``, successes are returned as worker-outcome tuples."""
    outcomes: List[tuple] = []
    attempts: Dict[GridPoint, int] = {point: 0 for point in points}
    work = partial(_worker_run_point, want_metrics=want_metrics)
    remaining = list(points)
    # A shared WorkerPool forces the pool path even for one point: its
    # callers (the service) want process isolation, not just throughput.
    if jobs > 1 and (len(points) > 1 or pool is not None):
        try:
            _execute_pool(
                remaining, jobs, work, policy, attempts, outcomes, report, pool,
                on_result=on_result, cancel=cancel,
            )
            return outcomes
        except _PoolUnavailable:
            # Restricted environments (no sem_open / fork): degrade to
            # serial for whatever the pool did not finish.
            report.degraded_serial = True
            finished = {outcome[0] for outcome in outcomes}
            quarantined = {failure.point for failure in report.failed}
            remaining = [
                point for point in points
                if point not in finished and point not in quarantined
            ]
    _execute_serial(
        remaining, work, policy, attempts, outcomes, report,
        on_result=on_result, cancel=cancel,
    )
    return outcomes


def _execute_serial(
    points, work, policy, attempts, outcomes, report, on_result=None, cancel=None
) -> None:
    """In-process execution with the same retry/quarantine semantics.

    No hang containment here — there is no process boundary to kill —
    so ``task_timeout`` only applies on the pool path.
    """
    for point in points:
        if cancel is not None and cancel.is_set():
            report.cancelled = True
            return
        while True:
            try:
                outcome = work(point)
                outcomes.append(outcome)
                _notify_result(on_result, point, outcome[1])
                break
            except Exception as exc:
                attempts[point] += 1
                if attempts[point] > policy.max_retries:
                    report.failed.append(
                        TaskFailure(
                            point, "error",
                            f"{type(exc).__name__}: {exc}", attempts[point],
                        )
                    )
                    break
                report.retries += 1
                time.sleep(policy.backoff(attempts[point]))


def _execute_pool(
    pending, jobs, work, policy, attempts, outcomes, report, shared=None,
    on_result=None, cancel=None,
) -> None:
    """Pooled execution: per-task futures, broken-pool salvage, isolation.

    ``pending`` is consumed; completed outcomes append to ``outcomes``
    and quarantined points to ``report.failed``.  ``shared``, when
    given, is a :class:`WorkerPool` supplying the executor (kept warm on
    success, discarded on break); isolation mode always owns a fresh
    single-worker pool regardless, so an indicted crasher never executes
    inside the shared pool.
    """
    breaks = 0
    while pending:
        if cancel is not None and cancel.is_set():
            report.cancelled = True
            return
        isolate = breaks >= _ISOLATE_AFTER_BREAKS
        batch = pending[:1] if isolate else list(pending)
        rest = pending[1:] if isolate else []
        workers = 1 if isolate else min(jobs, len(batch))
        owned = isolate or shared is None
        try:
            if owned:
                pool = ProcessPoolExecutor(max_workers=workers)
            else:
                pool = shared.executor()
        except (OSError, ImportError, NotImplementedError) as exc:
            raise _PoolUnavailable(str(exc)) from exc
        try:
            requeue, broke, quarantined_crash = _drive_pool(
                pool, batch, work, policy, attempts, outcomes, report,
                charge_broken=isolate, on_result=on_result, cancel=cancel,
            )
        except (OSError, ImportError) as exc:
            # The pool machinery itself is unusable (semaphores, pipes).
            if owned:
                _abort_pool(pool)
            else:
                shared.discard(pool)
            raise _PoolUnavailable(str(exc)) from exc
        if cancel is not None and cancel.is_set():
            # Cooperative stop: queued futures were cancelled inside
            # _drive_pool; anything still running is abandoned with its
            # pool (a dedicated pool is torn down, a shared one discarded
            # so the stragglers cannot occupy the next request's workers).
            report.cancelled = True
            if owned:
                _abort_pool(pool)
            else:
                shared.discard(pool)
            return
        if broke:
            if owned:
                _abort_pool(pool)
            else:
                shared.discard(pool)
            breaks += 1
            if requeue or rest:
                report.pool_restarts += 1
        elif owned:
            pool.shutdown(wait=True)
        # else: the shared pool stays warm for the next batch/request.
        if quarantined_crash:
            # The crasher is identified and quarantined; give pooled mode
            # another chance for the survivors.
            breaks = 0
        pending = requeue + rest


def _drive_pool(
    pool, batch, work, policy, attempts, outcomes, report, charge_broken=False,
    on_result=None, cancel=None,
):
    """Drive one pool over ``batch``; returns ``(requeue, broke, quarantined_crash)``.

    Transient worker exceptions are retried in-pool with backoff; a
    stall past ``policy.task_timeout`` charges the stuck tasks and
    requeues the queued ones; a dead worker (``BrokenExecutor``) marks
    the pool broken — in isolation mode (``charge_broken``) the single
    in-flight point is charged as a ``crash`` attempt, otherwise the
    unfinished points are requeued uncharged for the next pool.

    With ``cancel`` given, the wait loop wakes every ``_CANCEL_TICK``
    seconds to poll the stop signal; on cancellation, futures that have
    not started yet are cancelled (skipped, never charged), the rest are
    left to the caller's pool teardown, and nothing is requeued.
    """
    futures: Dict = {}
    requeue: List = []
    broke = False
    quarantined_crash = False

    def submit(point) -> None:
        nonlocal broke
        try:
            futures[pool.submit(work, point)] = point
        except (BrokenExecutor, RuntimeError):
            broke = True
            requeue.append(point)

    def charge(point, kind, detail) -> bool:
        """One failed attempt; True when the point is now quarantined."""
        nonlocal quarantined_crash
        attempts[point] += 1
        if attempts[point] > policy.max_retries:
            report.failed.append(TaskFailure(point, kind, detail, attempts[point]))
            if kind == "crash":
                quarantined_crash = True
            return True
        report.retries += 1
        return False

    for point in batch:
        if cancel is not None and cancel.is_set():
            break  # not-yet-submitted points are simply skipped
        if broke:
            requeue.append(point)
        else:
            submit(point)

    wait_timeout = policy.task_timeout
    if cancel is not None:
        wait_timeout = (
            _CANCEL_TICK if wait_timeout is None
            else min(wait_timeout, _CANCEL_TICK)
        )
    last_progress = time.monotonic()
    while futures:
        if cancel is not None and cancel.is_set():
            for future in [f for f in list(futures) if f.cancel()]:
                futures.pop(future)  # never started: skipped, not charged
            # The rest are already running in workers; the caller tears
            # the pool down around them.  Nothing is requeued.
            return [], False, quarantined_crash
        done, _ = wait(
            list(futures), timeout=wait_timeout, return_when=FIRST_COMPLETED
        )
        if not done:
            if policy.task_timeout is None or (
                time.monotonic() - last_progress < policy.task_timeout
            ):
                continue  # just a cancel-poll tick, not a stall
            # Stall: nothing finished within task_timeout.  Futures that
            # cancel were still queued — requeue them uncharged; the rest
            # are running in (possibly wedged) workers — charge them.
            for future in [f for f in list(futures) if f.cancel()]:
                requeue.append(futures.pop(future))
            for future, point in futures.items():
                if not charge(
                    point, "timeout",
                    f"no result within {policy.task_timeout:g}s",
                ):
                    requeue.append(point)
            futures.clear()
            broke = True  # wedged workers: the pool must be killed
            break
        last_progress = time.monotonic()
        for future in done:
            point = futures.pop(future)
            try:
                outcome = future.result()
            except CancelledError:
                requeue.append(point)
            except (BrokenExecutor, EOFError, ConnectionError) as exc:
                broke = True
                if charge_broken:
                    if not charge(point, "crash", f"worker died: {exc}"):
                        requeue.append(point)
                else:
                    # Which task killed the worker is unknowable here;
                    # requeue uncharged and let isolation mode indict.
                    requeue.append(point)
            except Exception as exc:
                if not charge(point, "error", f"{type(exc).__name__}: {exc}"):
                    time.sleep(policy.backoff(attempts[point]))
                    if broke:
                        requeue.append(point)
                    else:
                        submit(point)
            else:
                outcomes.append(outcome)
                _notify_result(on_result, point, outcome[1])
    return requeue, broke, quarantined_crash


def _abort_pool(pool) -> None:
    """Tear a (possibly broken or wedged) pool down without waiting.

    ``shutdown(wait=False)`` alone leaves hung workers running — and the
    interpreter joining them at exit — so any surviving worker processes
    are terminated outright.  Touches the private ``_processes`` map; on
    interpreters without it, termination degrades to shutdown only.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass
